(* Log2-bucketed latency histograms.

   A histogram keeps an exact record of every observation (the
   simulator's sample counts are small — thousands, not billions) plus
   a fixed array of power-of-two bucket counts.  Percentiles are
   therefore *exact* (nearest-rank over the raw samples), while the
   buckets give the compact shape used by the Prometheus exposition
   and the pretty-printer.

   Bucket i >= 1 covers the value range [2^(i-1), 2^i - 1]; bucket 0
   holds only the value 0.  Observations must be non-negative (they
   are cycle or microsecond latencies). *)

let num_buckets = 63

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
  mutable samples : int array; (* first [count] slots are live *)
}

let create () =
  {
    count = 0;
    sum = 0;
    vmin = max_int;
    vmax = min_int;
    buckets = Array.make num_buckets 0;
    samples = Array.make 64 0;
  }

(* --- Registry (span-name -> histogram), mirroring Counters ----------

   The registry lives in the current observability sink (one table per
   world/domain); [Sink] installs the indirection below at module-
   initialisation time.  The static fallback only exists to keep this
   module self-contained — in a linked program [Sink]'s initialiser
   has always run before any simulator code observes a value. *)

let registry_hook : (unit -> (string, t) Hashtbl.t) ref =
  let fallback : (string, t) Hashtbl.t = Hashtbl.create 16 in
  ref (fun () -> fallback)

let registry () = !registry_hook ()

let get_or_create name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
      let h = create () in
      Hashtbl.add registry name h;
      h

let find name = Hashtbl.find_opt (registry ()) name

let all_named () =
  Hashtbl.fold (fun n h acc -> (n, h) :: acc) (registry ()) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_all () = Hashtbl.reset (registry ())

(* --- Buckets --------------------------------------------------------- *)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (num_buckets - 1)
  end

(* Inclusive [lo, hi] value range of bucket [i]. *)
let bucket_bounds i =
  if i <= 0 then (0, 0)
  else if i >= num_buckets - 1 then (1 lsl (num_buckets - 2), max_int)
  else ((1 lsl (i - 1)), (1 lsl i) - 1)

(* --- Observation ----------------------------------------------------- *)

let observe t v =
  if v < 0 then invalid_arg "Histogram.observe: negative observation";
  if t.count = Array.length t.samples then begin
    let bigger = Array.make (2 * t.count) 0 in
    Array.blit t.samples 0 bigger 0 t.count;
    t.samples <- bigger
  end;
  t.samples.(t.count) <- v;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then None else Some t.vmin

let max_value t = if t.count = 0 then None else Some t.vmax

let mean t =
  if t.count = 0 then None
  else Some (float_of_int t.sum /. float_of_int t.count)

(* Exact nearest-rank percentile: the smallest recorded value such
   that at least p% of the observations are <= it.  [percentile t
   100.0] is the maximum; monotone in p by construction. *)
let percentile t p =
  if t.count = 0 then None
  else begin
    let sorted = Array.sub t.samples 0 t.count in
    Array.sort compare sorted;
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) - 1
    in
    let rank = max 0 (min (t.count - 1) rank) in
    Some sorted.(rank)
  end

let merge a b =
  let m = create () in
  for i = 0 to a.count - 1 do
    observe m a.samples.(i)
  done;
  for i = 0 to b.count - 1 do
    observe m b.samples.(i)
  done;
  m

(* Observations [from .. count-1] in insertion order — the tail a
   periodic sampler has not consumed yet (see Collector). *)
let samples_from t from =
  let from = max 0 (min from t.count) in
  Array.to_list (Array.sub t.samples from (t.count - from))

let clear t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int;
  Array.fill t.buckets 0 num_buckets 0

(* Non-empty buckets, lowest first: (lo, hi, count). *)
let buckets t =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, t.buckets.(i)) :: !acc
    end
  done;
  !acc

(* Cumulative (upper-bound, count<=bound) pairs for the Prometheus
   exposition; the +Inf bucket is the total count and is left to the
   exporter. *)
let cumulative t =
  let acc = ref [] and running = ref 0 in
  for i = 0 to num_buckets - 1 do
    if t.buckets.(i) > 0 then begin
      running := !running + t.buckets.(i);
      acc := (snd (bucket_bounds i), !running) :: !acc
    end
  done;
  List.rev !acc

let to_json t =
  let pct p = match percentile t p with Some v -> Json.Int v | None -> Json.Null in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("mean", match mean t with Some m -> Json.Float m | None -> Json.Null);
      ("min", match min_value t with Some v -> Json.Int v | None -> Json.Null);
      ("p50", pct 50.0);
      ("p90", pct 90.0);
      ("p99", pct 99.0);
      ("max", match max_value t with Some v -> Json.Int v | None -> Json.Null);
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, n) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int n) ])
             (buckets t)) );
    ]

let pp ppf t =
  if t.count = 0 then Fmt.string ppf "(empty)"
  else
    let v p = match percentile t p with Some x -> x | None -> 0 in
    Fmt.pf ppf "n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d" t.count
      (match mean t with Some m -> m | None -> 0.0)
      (v 50.0) (v 90.0) (v 99.0)
      (match max_value t with Some m -> m | None -> 0)
