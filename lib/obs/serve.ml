(* Tiny single-threaded HTTP exposition server.

   Just enough HTTP/1.1 to let `curl` and a Prometheus scraper pull
   the live telemetry: a non-blocking listener whose [poll] accepts
   and answers every pending connection, one at a time, on the calling
   thread.  The fleet coordinator calls [poll] between flusher beats,
   so serving needs no threads and can never race the simulator.

   Only GET is answered (405 otherwise); the handler maps a path
   (query string stripped) to an optional (content-type, body) pair,
   None becoming a 404.  Connections are Connection: close — every
   request gets a complete response and an EOF, which is all scrapers
   need.  Per-connection socket timeouts keep a stuck client from
   wedging the coordinator for more than a second or two. *)

type t = {
  sv_fd : Unix.file_descr;
  sv_port : int;
  sv_handler : string -> (string * string) option;
  mutable sv_served : int;
  mutable sv_closed : bool;
}

let create ?(host = "127.0.0.1") ?(backlog = 16) ~port handler =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sv_fd = fd; sv_port = port; sv_handler = handler; sv_served = 0; sv_closed = false }

let port t = t.sv_port

let served t = t.sv_served

(* Read until the request line is complete (first newline), EOF, a
   read timeout, or an 8 KiB cap — we never need more than the first
   line. *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf > 8192 || String.contains (Buffer.contents buf) '\n'
    then ()
    else
      let n =
        try Unix.read fd chunk 0 (Bytes.length chunk) with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            0
      in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
      end
  in
  loop ();
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_request_line line =
  let line = String.trim line in
  match String.split_on_char ' ' line with
  | meth :: path :: _ when meth <> "" && path <> "" -> Some (meth, path)
  | _ -> None

let strip_query path =
  let cut c path =
    match String.index_opt path c with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  cut '#' (cut '?' path)

let response ~status ~reason ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status reason content_type (String.length body) body

let send_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  try
    while !off < len do
      let n = Unix.write fd b !off (len - !off) in
      if n <= 0 then raise Exit;
      off := !off + n
    done
  with _ -> ()

let handle t fd =
  (try
     Unix.clear_nonblock fd;
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
   with _ -> ());
  let reply =
    match parse_request_line (read_request_line fd) with
    | Some ("GET", path) -> (
        match t.sv_handler (strip_query path) with
        | Some (content_type, body) ->
            response ~status:200 ~reason:"OK" ~content_type body
        | None ->
            response ~status:404 ~reason:"Not Found"
              ~content_type:"text/plain" "not found\n")
    | Some (_, _) ->
        response ~status:405 ~reason:"Method Not Allowed"
          ~content_type:"text/plain" "GET only\n"
    | None ->
        response ~status:400 ~reason:"Bad Request" ~content_type:"text/plain"
          "bad request\n"
  in
  send_all fd reply;
  t.sv_served <- t.sv_served + 1

let poll t =
  if t.sv_closed then 0
  else begin
    let served = ref 0 in
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true t.sv_fd with
      | fd, _ ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () -> try handle t fd with _ -> ());
          incr served
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          continue := false
      | exception Unix.Unix_error (_, _, _) -> continue := false
    done;
    !served
  end

let close t =
  if not t.sv_closed then begin
    t.sv_closed <- true;
    try Unix.close t.sv_fd with _ -> ()
  end
