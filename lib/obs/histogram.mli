(** Log2-bucketed latency histograms with exact percentiles.

    Every observation is kept, so {!percentile} is exact (nearest
    rank), while the power-of-two buckets give the compact shape used
    for export: bucket 0 holds only the value 0 and bucket [i >= 1]
    covers [[2^(i-1), 2^i - 1]].  Observations must be non-negative. *)

type t

val create : unit -> t
(** A fresh, anonymous histogram. *)

val get_or_create : string -> t
(** Intern a named histogram in the process-wide registry (spans feed
    their duration into the histogram named after the span). *)

val find : string -> t option

val all_named : unit -> (string * t) list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
(** Empty the registry (tests and profile runs). *)

val observe : t -> int -> unit
(** Record one observation.  Raises [Invalid_argument] on a negative
    value. *)

val count : t -> int

val sum : t -> int

val min_value : t -> int option

val max_value : t -> int option

val mean : t -> float option

val percentile : t -> float -> int option
(** Exact nearest-rank percentile; [None] when empty.  Monotone in
    the argument: p50 <= p90 <= p99 <= [max_value]. *)

val merge : t -> t -> t
(** A new histogram holding both sets of observations; the arguments
    are unchanged. *)

val samples_from : t -> int -> int list
(** Observations [from .. count t - 1] in insertion order — the tail a
    periodic sampler has not consumed yet.  [samples_from t 0] is every
    observation; out-of-range indexes clamp. *)

val clear : t -> unit

val bucket_of : int -> int
(** Bucket index of a value (exposed for tests). *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] value range of a bucket index. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets, lowest first: [(lo, hi, count)]. *)

val cumulative : t -> (int * int) list
(** Cumulative counts [(upper_bound, count_le_bound)] over non-empty
    buckets — the Prometheus [le] series without the [+Inf] bucket. *)

val to_json : t -> Json.t
(** [{count; sum; mean; min; p50; p90; p99; max; buckets}]. *)

val pp : Format.formatter -> t -> unit

(**/**)

val registry_hook : (unit -> (string, t) Hashtbl.t) ref
(** Where the named-histogram registry lives; {!Sink} points this at
    the current sink's table at init time.  Internal plumbing — not
    for simulator code. *)

(**/**)
