(* Bounded ring-buffer event tracer.

   Tracing is off by default and call sites guard event construction
   with [on ()], so the disabled cost is one boolean load.  When
   enabled, events overwrite the oldest entries once the ring is full;
   [dropped] reports how many were lost.  Payloads are plain
   ints/strings so the tracer has no dependency on the simulator
   libraries that publish into it (rings are carried as their integer
   privilege level).

   The ring itself lives in the current domain's {!Sink}
   ({!Trace_state} holds the mechanics); this module is the facade
   that keeps the classic global-looking API working while N worlds
   trace concurrently into their own rings. *)

type event = Trace_state.event =
  | Priv_transition of { from_ring : int; to_ring : int; via : string }
  | Fault of { vector : int; detail : string }
  | Module_load of { name : string; mechanism : string }
  | Module_unload of { name : string }
  | Protected_call of { fn : string; outcome : string; cycles : int }
  | Syscall of { number : int; name : string; ret : int }
  | Watchdog_expiry of { used : int; limit : int }
  | Desc_mutation of { table : string; slot : int; action : string }
  | Audit_outcome of { context : string; outcome : string; findings : int }
  | Custom of string

type entry = Trace_state.entry = { seq : int; at_cycles : int; event : event }

let ring () = Sink.trace (Sink.current ())

let on () = (ring ()).Trace_state.enabled

let set_enabled b = (ring ()).Trace_state.enabled <- b

let capacity () = Trace_state.capacity (ring ())

let clear () = Trace_state.clear (ring ())

(* Oldest first. *)
let events () = Trace_state.events (ring ())

let set_capacity n = Trace_state.set_capacity (ring ()) n

let emit ?cycles event =
  let r = ring () in
  if r.Trace_state.enabled then Trace_state.emit ?cycles r event

let dropped () = Trace_state.dropped (ring ())

let length () = Trace_state.length (ring ())

(* Short machine-readable tag of an event's family, used by the CLI's
   --filter and the JSON emission. *)
let kind_of_event = function
  | Priv_transition _ -> "priv"
  | Fault _ -> "fault"
  | Module_load _ | Module_unload _ -> "module"
  | Protected_call _ -> "call"
  | Syscall _ -> "syscall"
  | Watchdog_expiry _ -> "watchdog"
  | Desc_mutation _ -> "desc"
  | Audit_outcome _ -> "audit"
  | Custom _ -> "custom"

let event_fields = function
  | Priv_transition { from_ring; to_ring; via } ->
      [
        ("from_ring", Json.Int from_ring);
        ("to_ring", Json.Int to_ring);
        ("via", Json.String via);
      ]
  | Fault { vector; detail } ->
      [ ("vector", Json.Int vector); ("detail", Json.String detail) ]
  | Module_load { name; mechanism } ->
      [
        ("name", Json.String name);
        ("mechanism", Json.String mechanism);
        ("loaded", Json.Bool true);
      ]
  | Module_unload { name } ->
      [ ("name", Json.String name); ("loaded", Json.Bool false) ]
  | Protected_call { fn; outcome; cycles } ->
      [
        ("fn", Json.String fn);
        ("outcome", Json.String outcome);
        ("cycles", Json.Int cycles);
      ]
  | Syscall { number; name; ret } ->
      [
        ("number", Json.Int number);
        ("name", Json.String name);
        ("ret", Json.Int ret);
      ]
  | Watchdog_expiry { used; limit } ->
      [ ("used", Json.Int used); ("limit", Json.Int limit) ]
  | Desc_mutation { table; slot; action } ->
      [
        ("table", Json.String table);
        ("slot", Json.Int slot);
        ("action", Json.String action);
      ]
  | Audit_outcome { context; outcome; findings } ->
      [
        ("context", Json.String context);
        ("outcome", Json.String outcome);
        ("findings", Json.Int findings);
      ]
  | Custom s -> [ ("detail", Json.String s) ]

let entry_to_json (e : entry) =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("at_cycles", Json.Int e.at_cycles);
       ("kind", Json.String (kind_of_event e.event));
     ]
    @ event_fields e.event)

let to_json () =
  Json.Obj
    [
      ("events", Json.List (List.map entry_to_json (events ())));
      ("dropped", Json.Int (dropped ()));
      ("capacity", Json.Int (capacity ()));
    ]

let pp_event ppf = function
  | Priv_transition { from_ring; to_ring; via } ->
      Fmt.pf ppf "priv r%d->r%d via %s" from_ring to_ring via
  | Fault { vector; detail } -> Fmt.pf ppf "fault #%d %s" vector detail
  | Module_load { name; mechanism } ->
      Fmt.pf ppf "module load %s (%s)" name mechanism
  | Module_unload { name } -> Fmt.pf ppf "module unload %s" name
  | Protected_call { fn; outcome; cycles } ->
      Fmt.pf ppf "protected call %s -> %s (%d cycles)" fn outcome cycles
  | Syscall { number; name; ret } ->
      Fmt.pf ppf "syscall %d (%s) = %d" number name ret
  | Watchdog_expiry { used; limit } ->
      Fmt.pf ppf "watchdog expiry: %d > %d cycles" used limit
  | Desc_mutation { table; slot; action } ->
      Fmt.pf ppf "desc %s %s[%d]" action table slot
  | Audit_outcome { context; outcome; findings } ->
      Fmt.pf ppf "audit %s: %s (%d findings)" context outcome findings
  | Custom s -> Fmt.string ppf s

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "[%6d] @%-10d %a" e.seq e.at_cycles pp_event e.event

let dump ppf () =
  let es = events () in
  if es = [] then Fmt.pf ppf "(trace empty%s)@."
      (if on () then "" else "; tracing is disabled")
  else begin
    List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) es;
    if dropped () > 0 then
      Fmt.pf ppf "(%d older events dropped; ring capacity %d)@." (dropped ())
        (capacity ())
  end
