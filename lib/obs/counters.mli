(** Named event counters and gauges.

    Components resolve a handle once ([counter]/[gauge] are
    get-or-create) and publish with {!incr}/{!add}/{!set}; readers take
    a {!snapshot} of every registered value at once.

    Names and kinds are process-wide; the values live in the current
    domain's {!Sink}, so the same handle publishes into whichever
    world is running on this domain (see {!Sink.with_sink}). *)

type kind = Counter  (** monotonic event count *) | Gauge  (** last-written value *)

type t

val counter : ?help:string -> string -> t
(** Get or create the monotonic counter with this name.  [?help] is a
    one-line description surfaced as [# HELP] by the Prometheus
    exposition; the first help string registered for a name wins. *)

val gauge : ?help:string -> string -> t
(** Get or create the gauge with this name (see {!counter} for
    [?help]). *)

val name : t -> string

val kind : t -> kind

val help : t -> string option

val value : t -> int

val incr : t -> unit

val add : t -> int -> unit
(** Raises [Invalid_argument] on a negative increment of a monotonic
    counter. *)

val set : t -> int -> unit
(** Gauges only; raises [Invalid_argument] on a monotonic counter. *)

val find : string -> t option

val get : string -> int
(** Value by name; 0 when the counter has never been registered. *)

val all : unit -> t list
(** Every registered counter, sorted by name. *)

val snapshot : unit -> (string * int) list
(** (name, value) for every registered counter, sorted by name. *)

val delta : since:(string * int) list -> (string * int) list
(** Nonzero changes relative to an earlier {!snapshot}. *)

val reset_all : unit -> unit
(** Zero every registered counter and gauge (tests and bench runs). *)

val pp : Format.formatter -> unit -> unit
(** Aligned name/value table of the current snapshot, grouped by
    dot-separated prefix ([mmu.*], [kern.*], …) with a per-group
    header carrying the member count and the subtotal of its
    monotonic counters (gauges are listed but not summed).  Groups and
    members are emitted in sorted name order, so the output is stable
    across runs and registration orders. *)
