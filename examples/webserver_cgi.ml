(* The paper's user-level application: LibCGI — CGI scripts invoked by
   the web server as protected local function calls.  This example

   1. measures the protected-call cost on the simulated CPU (the cost
      LibCGI pays per request under Palladium), and
   2. runs the ApacheBench-style experiment comparing CGI, FastCGI,
      LibCGI, protected LibCGI and static files.

       dune exec examples/webserver_cgi.exe *)

let () =
  (* Measure one protected call the way the web server would pay it. *)
  let world = Palladium.boot () in
  let app = Palladium.create_app world ~name:"httpd" in
  let script = User_ext.seg_dlopen app Ulib.strrev_image in
  let prepare = User_ext.seg_dlsym app script "strrev" in
  let buf = User_ext.xmalloc script 128 in
  User_ext.poke_bytes app buf (Bytes.of_string "<html>hi</html>\000");
  ignore (User_ext.call app ~prepare ~arg:buf) (* warm *);
  User_ext.poke_bytes app buf (Bytes.of_string "<html>hi</html>\000");
  let call_usec =
    match User_ext.call app ~prepare ~arg:buf with
    | Ok (_, cycles) -> float_of_int cycles /. float_of_int Cycles.mhz
    | Error e -> Fmt.failwith "CGI call failed: %a" User_ext.pp_call_error e
  in
  Printf.printf
    "a LibCGI script runs as a protected call: %.2f usec per invocation\n\
     (script output: %s)\n\n"
    call_usec
    (Bytes.to_string (User_ext.peek_bytes app buf 15));

  (* The throughput experiment (Table 3), using the measured call cost
     for the protected LibCGI column. *)
  let rows = Bench_ab.sweep ~protected_call_usec:call_usec () in
  Printf.printf "%-12s %8s %9s %13s %15s %11s\n" "size" "CGI" "FastCGI"
    "LibCGI(prot)" "LibCGI(unprot)" "static";
  List.iter
    (fun (row : Bench_ab.row) ->
      let v inv = Bench_ab.throughput row inv in
      Printf.printf "%-12s %8.0f %9.0f %13.0f %15.0f %11.0f\n"
        row.Bench_ab.size_label (v Cgi_model.Cgi) (v Cgi_model.Fast_cgi)
        (v Cgi_model.Libcgi_protected) (v Cgi_model.Libcgi)
        (v Cgi_model.Static))
    rows;
  print_endline
    "\n(requests/second, 1000 requests, 30 concurrent, 100 Mbps link —\n\
    \ protected LibCGI stays within a few percent of unprotected LibCGI\n\
    \ and several times faster than fork/exec CGI)"
