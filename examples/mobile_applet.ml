(* Mobile code on Palladium (paper section 6, first on-going
   direction): "Combined with restricted OS services, Palladium could
   provide the security guarantee for mobile applets that are written
   in a compiled language such as C."

   A browser-like host receives compiled applets "from the network",
   loads them into SPL 3 extension segments, and exposes exactly one
   restricted service (display).  A well-behaved applet renders
   through the service; a hostile applet tries the application's
   memory, a direct system call, and an infinite loop — and is stopped
   by the page hardware, the taskSPL check and the watchdog.

       dune exec examples/mobile_applet.exe *)

let i x = Asm.I x

let reg r = Operand.Reg r

(* "Downloaded" applet: computes 10 Fibonacci numbers and displays the
   last through the host's service gate (selector read from a shared
   slot the host fills in). *)
let fib_applet ~slot_addr =
  Image.create ~name:"fib-applet" ~exports:[ "main" ]
    [
      Asm.L "main";
      i (Instr.Mov (reg Reg.EAX, Operand.Imm 1)); (* f(n-1) *)
      i (Instr.Mov (reg Reg.EBX, Operand.Imm 1)); (* f(n) *)
      i (Instr.Mov (reg Reg.ECX, Operand.Imm 8));
      Asm.L "main.loop";
      i (Instr.Cmp (reg Reg.ECX, Operand.Imm 0));
      i (Instr.Jcc (Instr.Eq, Instr.Label "main.show"));
      i (Instr.Mov (reg Reg.EDX, reg Reg.EBX));
      i (Instr.Alu (Instr.Add, reg Reg.EBX, reg Reg.EAX));
      i (Instr.Mov (reg Reg.EAX, reg Reg.EDX));
      i (Instr.Dec (reg Reg.ECX));
      i (Instr.Jmp (Instr.Label "main.loop"));
      Asm.L "main.show";
      i (Instr.Push (reg Reg.EBX));
      i (Instr.Lcall_ind (Operand.absolute slot_addr)); (* display(f(10)) *)
      i (Instr.Alu (Instr.Add, reg Reg.ESP, Operand.Imm 4));
      i Instr.Ret;
    ]

let () =
  let world = Palladium.boot () in
  let browser = Palladium.create_app world ~name:"browser" in

  (* The restricted service surface: display only. *)
  let displayed = ref [] in
  let browser_ref = ref None in
  let display_sel =
    User_ext.add_service browser ~name:"display" ~handler:(fun ~args_base ->
        let b = Option.get !browser_ref in
        let v = User_ext.peek_u32 b args_base in
        displayed := v :: !displayed;
        0)
  in
  browser_ref := Some browser;
  Printf.printf "browser exposes one service: display (gate %#x)\n" display_sel;

  (* Applet 1: well-behaved. *)
  let scratch = User_ext.seg_dlopen browser Ulib.null_image in
  let slot = User_ext.xmalloc scratch 4 in
  User_ext.poke_u32 browser slot display_sel;
  let applet = User_ext.seg_dlopen browser (fib_applet ~slot_addr:slot) in
  let main = User_ext.seg_dlsym browser applet "main" in
  (match User_ext.call browser ~prepare:main ~arg:0 with
  | Ok _ -> Printf.printf "applet displayed: %d (fib 10)\n" (List.hd !displayed)
  | Error e -> Fmt.pr "applet failed: %a\n" User_ext.pp_call_error e);

  (* Applet 2: hostile. *)
  print_endline "\nhostile applet:";
  User_ext.set_time_limit browser 100_000;
  let evil_mem = User_ext.seg_dlopen browser Ulib.rogue_write_image in
  let poke = User_ext.seg_dlsym browser evil_mem "poke" in
  let host_private =
    (List.find
       (fun (a : Vm_area.t) -> a.Vm_area.label = "palladium.data")
       (Address_space.areas (User_ext.task browser).Task.asp))
      .Vm_area.va_start
  in
  (match User_ext.call browser ~prepare:poke ~arg:host_private with
  | Error (User_ext.Protection_fault _) ->
      print_endline "  - write to browser memory: blocked (page hardware)"
  | _ -> print_endline "  !! memory attack succeeded");
  let evil_sys = User_ext.seg_dlopen browser Ulib.rogue_syscall_image in
  let try_sys = User_ext.seg_dlsym browser evil_sys "try_syscall" in
  (match User_ext.call browser ~prepare:try_sys ~arg:0 with
  | Ok (v, _) when v land 0x8000_0000 <> 0 ->
      print_endline "  - direct system call: rejected with EPERM (taskSPL)"
  | _ -> print_endline "  !! syscall escaped the sandbox");
  let evil_loop = User_ext.seg_dlopen browser Ulib.rogue_loop_image in
  let spin = User_ext.seg_dlsym browser evil_loop "spin" in
  (match User_ext.call browser ~prepare:spin ~arg:0 with
  | Error (User_ext.Time_limit_exceeded _) ->
      print_endline "  - infinite loop: aborted by the CPU-time watchdog"
  | _ -> print_endline "  !! loop ran forever");

  Printf.printf
    "\nbrowser survived all three attacks; %d SIGSEGV/SIGALRM signals handled\n"
    (List.length (Signal.delivered (User_ext.task browser).Task.signals))
