(* The paper's kernel-level application: packet filtering.  Runs the
   same conjunctive filter two ways over a packet stream —

   - interpreted by the BPF virtual machine (a classic kernel module,
     the tcpdump path), and
   - compiled to native code and run as a *Palladium kernel extension*
     at SPL 1, confined by its extension segment —

   and reports matches and cycle costs.

       dune exec examples/packet_filter.exe *)

let () =
  let world = Palladium.boot () in
  let kernel = Palladium.kernel world in
  let task = Kernel.create_task kernel ~name:"netd" in

  (* The filter: UDP traffic from 10.0.0.1 to port 7777. *)
  let terms =
    [
      Filter_expr.term Filter_expr.Ether_type Packet.ethertype_ip;
      Filter_expr.term Filter_expr.Ip_proto Packet.proto_udp;
      Filter_expr.term Filter_expr.Ip_src (Packet.ip 10 0 0 1);
      Filter_expr.term Filter_expr.Dst_port 7777;
    ]
  in
  Fmt.pr "filter: %a\n" Filter_expr.pp terms;

  (* BPF side: compile tcpdump-style and print the program. *)
  let prog = Filter_expr.to_bpf_tcpdump terms in
  Printf.printf "\ntcpdump-style BPF program (%d instructions):\n"
    (Array.length prog);
  Array.iteri (fun idx insn -> Fmt.pr "  %2d: %a\n" idx Bpf_insn.pp insn) prog;
  let interp = Bpf_asm_interp.load kernel in
  Bpf_asm_interp.set_program interp prog;

  (* Palladium side: native code in an SPL 1 extension segment. *)
  let seg = Palladium.create_kernel_segment world in
  let native = Native_compile.load seg terms in

  (* A 200-packet stream, 25% matching. *)
  let gen = Pkt_gen.create ~seed:42 () in
  let packets = Pkt_gen.stream gen ~count:200 ~match_percent:25 in
  let bpf_matches = ref 0 and bpf_cycles = ref 0 in
  let nat_matches = ref 0 and nat_cycles = ref 0 in
  List.iter
    (fun pkt ->
      let bytes = Packet.to_bytes pkt in
      Bpf_asm_interp.set_packet interp bytes;
      let v, c = Bpf_asm_interp.run interp task in
      if v <> 0 then incr bpf_matches;
      bpf_cycles := !bpf_cycles + c;
      match Native_compile.run native task ~packet:bytes with
      | Ok (v, c) ->
          if v = 1 then incr nat_matches;
          nat_cycles := !nat_cycles + c
      | Error e -> Fmt.failwith "native filter: %a" Kernel_ext.pp_invoke_error e)
    packets;
  Printf.printf "\n%-28s %8s %14s %12s\n" "engine" "matches" "total cycles"
    "cycles/pkt";
  Printf.printf "%-28s %8d %14d %12.1f\n" "BPF interpreter (kernel)"
    !bpf_matches !bpf_cycles
    (float_of_int !bpf_cycles /. 200.0);
  Printf.printf "%-28s %8d %14d %12.1f\n" "compiled Palladium extension"
    !nat_matches !nat_cycles
    (float_of_int !nat_cycles /. 200.0);
  assert (!bpf_matches = !nat_matches);
  Printf.printf "\nagreement: both engines matched %d/200 packets\n" !nat_matches
