(* A tour of every containment mechanism: each scenario loads a
   deliberately misbehaving extension and shows the hardware (or the
   watchdog) stopping it while the host survives.

       dune exec examples/fault_injection.exe *)

let scenario name f =
  Printf.printf "\n--- %s ---\n" name;
  f ()

let () =
  let world = Palladium.boot () in
  let app = Palladium.create_app world ~name:"host" in
  let task = User_ext.task app in

  scenario "1. extension writes the application's private data" (fun () ->
      let rogue = User_ext.seg_dlopen app Ulib.rogue_write_image in
      let poke = User_ext.seg_dlsym app rogue "poke" in
      let target =
        (List.find
           (fun (a : Vm_area.t) -> a.Vm_area.label = "palladium.data")
           (Address_space.areas task.Task.asp))
          .Vm_area.va_start
      in
      match User_ext.call app ~prepare:poke ~arg:target with
      | Error (User_ext.Protection_fault f) ->
          Fmt.pr "blocked by the U/S page check: %a\n" X86.Fault.pp f
      | _ -> print_endline "!! not blocked");

  scenario "2. extension overwrites the (read-only, PPL 1) GOT" (fun () ->
      (* give the rogue a GOT to attack: a client with imports *)
      ignore
        (Dyld.dlopen ~kernel:(User_ext.kernel app) ~task
           ~env:(User_ext.env app) Ulib.libc_image);
      let client =
        User_ext.seg_dlopen app Ulib.strlen_client_image
      in
      let got =
        match client.User_ext.x_handle.Dyld.h_got_base with
        | Some g -> g
        | None -> failwith "client has no GOT"
      in
      (* the loader bound the GOT eagerly and write-protected it *)
      let rogue = User_ext.seg_dlopen app Ulib.rogue_write_image in
      let poke = User_ext.seg_dlsym app rogue "poke" in
      match User_ext.call app ~prepare:poke ~arg:got with
      | Error (User_ext.Protection_fault f) ->
          Fmt.pr "blocked by the read-only page check: %a\n" X86.Fault.pp f
      | _ -> print_endline "!! not blocked");

  scenario "3. extension loops forever" (fun () ->
      User_ext.set_time_limit app 50_000;
      let rogue = User_ext.seg_dlopen app Ulib.rogue_loop_image in
      let spin = User_ext.seg_dlsym app rogue "spin" in
      match User_ext.call app ~prepare:spin ~arg:0 with
      | Error (User_ext.Time_limit_exceeded e) ->
          Printf.printf
            "aborted by the per-invocation CPU limit: used %d > %d cycles\n"
            e.Watchdog.wd_used e.Watchdog.wd_limit
      | _ -> print_endline "!! not stopped");

  scenario "4. extension tries a direct system call" (fun () ->
      let rogue = User_ext.seg_dlopen app Ulib.rogue_syscall_image in
      let try_sys = User_ext.seg_dlsym app rogue "try_syscall" in
      match User_ext.call app ~prepare:try_sys ~arg:0 with
      | Ok (v, _) ->
          let v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v in
          Printf.printf
            "kernel rejected it: getpid returned %d (EPERM, the taskSPL check)\n"
            v
      | Error e -> Fmt.pr "unexpected: %a\n" User_ext.pp_call_error e);

  scenario "5. kernel extension overruns its segment" (fun () ->
      let seg = Palladium.create_kernel_segment world in
      ignore (Kernel_ext.insmod seg Ulib.rogue_read_image);
      let ktask = Kernel.create_task (Palladium.kernel world) ~name:"k" in
      match
        Kernel_ext.invoke ~task:ktask seg ~name:"rogueread$peek"
          ~arg:(Kernel_ext.seg_size seg + 0x100000)
      with
      | Error (Kernel_ext.Aborted_fault f) ->
          Fmt.pr "blocked by the segment-limit check and aborted: %a\n"
            X86.Fault.pp f;
          Printf.printf "segment now dead: %b\n" (Kernel_ext.is_dead seg)
      | _ -> print_endline "!! not blocked");

  scenario "6. wild pointer vs the protected memory service" (fun () ->
      let guard = Guard.create app ~size:256 in
      (match Guard.store guard ~offset:16 ~value:123 with
      | Ok () -> print_endline "in-bounds store succeeded"
      | Error _ -> print_endline "!! in-bounds store failed");
      match Guard.store guard ~offset:5000 ~value:66 with
      | Error (Guard.Out_of_bounds f) ->
          Fmt.pr "wild store blocked by the guard segment limit: %a\n"
            X86.Fault.pp f
      | Ok () -> print_endline "!! wild store succeeded");

  Printf.printf "\ntotal SIGSEGVs delivered to the host application: %d\n"
    (List.length (Signal.delivered task.Task.signals));
  print_endline "host application still alive and well."
