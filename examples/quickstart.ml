(* Quickstart: boot a Palladium world, build an extensible application,
   load an extension into an SPL 3 extension segment and call it as a
   protected local function call.

       dune exec examples/quickstart.exe *)

let () =
  (* Boot the simulated Pentium + Palladium-modified kernel. *)
  let world = Palladium.boot () in

  (* An extensible application: created at SPL 3, it promotes itself
     to SPL 2 with init_PL — from here on all its writable pages are
     PPL 0 and invisible to extensions. *)
  let app = Palladium.create_app world ~name:"quickstart" in
  Printf.printf "application promoted: taskSPL=%d\n"
    (X86.Privilege.to_int (User_ext.task app).Task.task_spl);

  (* Load an extension (a stateful invocation counter) with
     seg_dlopen: same 0-3GB range, SPL 3 segment, own stack + heap. *)
  let ext = User_ext.seg_dlopen app Ulib.counter_image in

  (* seg_dlsym generates the Prepare/Transfer stubs (Figure 6) and
     returns a pointer to Prepare. *)
  let bump = User_ext.seg_dlsym app ext "bump" in

  for _ = 1 to 3 do
    match User_ext.call app ~prepare:bump ~arg:0 with
    | Ok (count, cycles) ->
        Printf.printf "protected call -> count=%d (%d cycles, %.2f usec)\n"
          count cycles
          (float_of_int cycles /. float_of_int Cycles.mhz)
    | Error e -> Fmt.pr "call failed: %a\n" User_ext.pp_call_error e
  done;

  (* The extension cannot touch the application's private data: *)
  let rogue = User_ext.seg_dlopen app Ulib.rogue_write_image in
  let poke = User_ext.seg_dlsym app rogue "poke" in
  let private_page =
    List.find
      (fun (a : Vm_area.t) -> a.Vm_area.label = "palladium.data")
      (Address_space.areas (User_ext.task app).Task.asp)
  in
  (match User_ext.call app ~prepare:poke ~arg:private_page.Vm_area.va_start with
  | Error (User_ext.Protection_fault f) ->
      Fmt.pr "rogue write stopped by hardware: %a\n" X86.Fault.pp f
  | Ok _ -> print_endline "!! protection failed"
  | Error e -> Fmt.pr "unexpected: %a\n" User_ext.pp_call_error e);
  Printf.printf "SIGSEGVs delivered to the application: %d\n"
    (List.length (Signal.delivered (User_ext.task app).Task.signals))
