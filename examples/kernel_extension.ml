(* The kernel-level extension mechanism end to end: load modules into
   an SPL 1 extension segment, share data through the well-known
   shared area, expose a core kernel service through a DPL 1 call
   gate, and drive asynchronous requests through the request queue.

       dune exec examples/kernel_extension.exe *)

let i x = Asm.I x

let reg r = Operand.Reg r

(* A module that reads a word from the shared area, transforms it via
   a *kernel service* (reached through a call gate), and stores the
   result back. *)
let transformer ~service_symbol =
  Image.create ~name:"transformer"
    ~bss:[ Image.bss_item Pconfig.shared_area_symbol 4096 ]
    ~exports:[ "transform" ]
    [
      Asm.L "transform";
      (* arg = offset of the input word inside the segment *)
      i (Instr.Mov (reg Reg.EDX, Operand.deref ~disp:4 Reg.ESP));
      i (Instr.Mov (reg Reg.EAX, Operand.deref Reg.EDX));
      (* call the exposed kernel service: double-and-add-tax *)
      i (Instr.Push (reg Reg.EDX)); (* save *)
      i (Instr.Push (reg Reg.EAX)); (* service argument *)
      i (Instr.Lcall service_symbol);
      i (Instr.Alu (Instr.Add, reg Reg.ESP, Operand.Imm 4));
      i (Instr.Pop (reg Reg.EDX));
      i (Instr.Mov (Operand.deref ~disp:4 Reg.EDX, reg Reg.EAX));
      i Instr.Ret;
    ]

let () =
  let world = Palladium.boot () in
  let kernel = Palladium.kernel world in
  let task = Kernel.create_task kernel ~name:"init" in
  let seg = Palladium.create_kernel_segment world in

  (* Expose a core kernel service to extensions in this segment.  The
     handler reads the argument from the extension's stack (already
     swizzled into a kernel address by the gate stub). *)
  let service_sel =
    Kernel_ext.expose_service seg ~name:"double_plus_one"
      ~handler:(fun ~args_linear ->
        let v = Kernel.kpeek_u32 kernel args_linear in
        (2 * v) + 1)
  in
  Printf.printf "kernel service exposed through call gate selector %#x\n"
    service_sel;

  (* Load the extension module; its code references the gate selector
     as an assembly-time constant, like a module linked against the
     exported service table. *)
  ignore (Kernel_ext.insmod seg (transformer ~service_symbol:service_sel));

  (* Synchronous invocation: kernel writes input into the shared data
     area, invokes the extension, reads the result back. *)
  Kernel_ext.write_shared seg ~off:0
    (let b = Bytes.create 4 in
     Bytes.set_int32_le b 0 20l;
     b);
  let shared_off =
    match Kernel_ext.shared_linear seg with
    | Some linear -> Kernel_ext.to_segment_offset seg linear
    | None -> failwith "no shared area"
  in
  (match Kernel_ext.invoke ~task seg ~name:"transformer$transform" ~arg:shared_off with
  | Ok (Some (_, cycles)) ->
      let out = Kernel_ext.read_shared seg ~off:4 4 in
      Printf.printf
        "sync invocation: f(20) = %ld via SPL1 extension + SPL0 service (%d cycles)\n"
        (Bytes.get_int32_le out 0) cycles
  | Ok None -> print_endline "service not found"
  | Error e -> Fmt.pr "invoke failed: %a\n" Kernel_ext.pp_invoke_error e);

  (* Asynchronous invocations: queue requests, then schedule the
     extension (e.g. when the CPU is free after high-priority work). *)
  ignore (Kernel_ext.insmod seg Ulib.counter_image);
  Kernel_ext.post_async seg ~name:"counter$bump" ~arg:0;
  Kernel_ext.post_async seg ~name:"counter$bump" ~arg:0;
  Kernel_ext.post_async seg ~name:"counter$bump" ~arg:0;
  Printf.printf "queued %d async requests (module busy: %b)\n"
    (Kernel_ext.pending seg) (Kernel_ext.is_busy seg);
  let results = Kernel_ext.schedule ~task seg in
  Printf.printf "scheduled: %d requests ran to completion\n"
    (List.length results);
  (match Kernel_ext.invoke ~task seg ~name:"counter$bump" ~arg:0 with
  | Ok (Some (v, _)) -> Printf.printf "counter now at %d\n" v
  | _ -> print_endline "bump failed");

  Printf.printf "extension segment: base=%#x size=%d KB, %d invocations so far\n"
    (Kernel_ext.seg_base seg)
    (Kernel_ext.seg_size seg / 1024)
    (Kernel_ext.invocations seg)
