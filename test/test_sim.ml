(* Tests for the discrete-event simulator and FCFS resources. *)

let check_int = Alcotest.(check int)


let check_float = Alcotest.(check (float 1e-9))

let test_event_ordering () =
  let des = Des.create () in
  let log = ref [] in
  Des.schedule des ~delay:3.0 (fun () -> log := 3 :: !log);
  Des.schedule des ~delay:1.0 (fun () -> log := 1 :: !log);
  Des.schedule des ~delay:2.0 (fun () -> log := 2 :: !log);
  Des.run des;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3.0 (Des.now des)

let test_fifo_tie_break () =
  let des = Des.create () in
  let log = ref [] in
  for k = 1 to 5 do
    Des.schedule des ~delay:1.0 (fun () -> log := k :: !log)
  done;
  Des.run des;
  Alcotest.(check (list int)) "insertion order at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_nested_scheduling () =
  let des = Des.create () in
  let fired = ref 0.0 in
  Des.schedule des ~delay:1.0 (fun () ->
      Des.schedule des ~delay:2.5 (fun () -> fired := Des.now des));
  Des.run des;
  check_float "relative delay" 3.5 !fired

let test_until () =
  let des = Des.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Des.schedule des ~delay:1.0 tick
  in
  Des.schedule des ~delay:1.0 tick;
  Des.run ~until:10.5 des;
  check_int "stopped at horizon" 10 !count

let test_negative_delay_rejected () =
  let des = Des.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Des.schedule: negative delay") (fun () ->
      Des.schedule des ~delay:(-1.0) ignore)

let prop_sorted_firing =
  QCheck.Test.make ~name:"random delays fire in sorted order"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range 0.0 1000.0))
    (fun delays ->
      let des = Des.create () in
      let fired = ref [] in
      List.iter
        (fun d -> Des.schedule des ~delay:d (fun () -> fired := Des.now des :: !fired))
        delays;
      Des.run des;
      let order = List.rev !fired in
      List.sort compare order = order
      && List.length order = List.length delays)

let test_resource_fcfs () =
  let des = Des.create () in
  let r = Resource.create des ~name:"cpu" in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Resource.acquire r ~service:10.0 (fun () ->
        done_at := Des.now des :: !done_at)
  done;
  check_int "queued behind the busy server" 2 (Resource.queue_length r);
  Des.run des;
  Alcotest.(check (list (float 1e-9)))
    "serialised completions" [ 10.0; 20.0; 30.0 ]
    (List.rev !done_at);
  check_int "served" 3 (Resource.served r);
  check_float "fully utilised" 1.0 (Resource.utilisation r ~horizon:30.0)

let test_resource_idle_gap () =
  let des = Des.create () in
  let r = Resource.create des ~name:"cpu" in
  Resource.acquire r ~service:5.0 ignore;
  Des.schedule des ~delay:20.0 (fun () -> Resource.acquire r ~service:5.0 ignore);
  Des.run des;
  check_float "utilisation with gap" 0.4 (Resource.utilisation r ~horizon:25.0)

let () =
  Alcotest.run "sim"
    [
      ( "des",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "fifo tie break" `Quick test_fifo_tie_break;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_until;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          QCheck_alcotest.to_alcotest prop_sorted_firing;
        ] );
      ( "resource",
        [
          Alcotest.test_case "fcfs service" `Quick test_resource_fcfs;
          Alcotest.test_case "idle gaps" `Quick test_resource_idle_gap;
        ] );
    ]
