(* Integration tests for the Palladium core: the user-level and
   kernel-level extension mechanisms end to end on the simulated
   machine. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* EAX holds 32-bit two's-complement values; sign-extend for errno
   comparisons. *)
let s32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

(* --- User-level mechanism ------------------------------------------ *)

let test_app_boots () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let task = User_ext.task app in
  check_bool "promoted to SPL2" true (Task.is_promoted task);
  check_bool "address space promoted" true
    (Address_space.is_promoted task.Task.asp)

let test_null_extension_call () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.null_image in
  let prepare = User_ext.seg_dlsym app ext "null_fn" in
  match User_ext.call app ~prepare ~arg:42 with
  | Ok (_value, cycles) ->
      check_bool "cycles positive" true (cycles > 0)
  | Error e -> Alcotest.failf "call failed: %a" User_ext.pp_call_error e

let test_strrev_extension () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.strrev_image in
  let prepare = User_ext.seg_dlsym app ext "strrev" in
  (* Shared buffer: allocated in the extension heap so both sides can
     touch it. *)
  let buf = User_ext.xmalloc ext 64 in
  User_ext.poke_bytes app buf (Bytes.of_string "hello world\000");
  (match User_ext.call app ~prepare ~arg:buf with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "strrev failed: %a" User_ext.pp_call_error e);
  let out = User_ext.peek_bytes app buf 11 in
  Alcotest.(check string) "reversed" "dlrow olleh" (Bytes.to_string out)

let run_rogue image fn arg =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app image in
  let prepare = User_ext.seg_dlsym app ext fn in
  let arg = arg app ext in
  (app, User_ext.call app ~prepare ~arg)

let test_rogue_write_app_data_segvs () =
  (* The rogue writes into the application's private data (PPL 0). *)
  let app_data_addr (app : User_ext.t) _ext =
    (* the SP2 slot page: application-private, writable, PPL 0 *)
    match
      List.find_opt
        (fun (a : Vm_area.t) -> a.Vm_area.label = "palladium.data")
        (Address_space.areas (User_ext.task app).Task.asp)
    with
    | Some a -> a.Vm_area.va_start
    | None -> Alcotest.fail "palladium.data area missing"
  in
  let app, result = run_rogue Ulib.rogue_write_image "poke" app_data_addr in
  (match result with
  | Error (User_ext.Protection_fault f) ->
      check_bool "page fault" true (X86.Fault.is_page_fault f)
  | Ok _ -> Alcotest.fail "rogue write succeeded!"
  | Error e -> Alcotest.failf "unexpected error: %a" User_ext.pp_call_error e);
  (* SIGSEGV was recorded against the task. *)
  let task = User_ext.task app in
  check_int "one segv" 1 (List.length (Signal.delivered task.Task.signals))

let test_rogue_write_own_heap_ok () =
  let own_heap _app ext = User_ext.xmalloc ext 16 in
  let _app, result = run_rogue Ulib.rogue_write_image "poke" own_heap in
  match result with
  | Ok (v, _) -> check_int "returned 1" 1 v
  | Error e -> Alcotest.failf "write to own heap failed: %a" User_ext.pp_call_error e

let test_rogue_infinite_loop_times_out () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  User_ext.set_time_limit app 20_000;
  let ext = User_ext.seg_dlopen app Ulib.rogue_loop_image in
  let prepare = User_ext.seg_dlsym app ext "spin" in
  match User_ext.call app ~prepare ~arg:0 with
  | Error (User_ext.Time_limit_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "infinite loop returned?!"
  | Error e -> Alcotest.failf "unexpected error: %a" User_ext.pp_call_error e

let test_rogue_syscall_rejected () =
  let _app, result = run_rogue Ulib.rogue_syscall_image "try_syscall" (fun _ _ -> 0) in
  match result with
  | Ok (v, _) -> check_int "EPERM" (Errno.to_ret Errno.EPERM) (s32 v)
  | Error e -> Alcotest.failf "unexpected error: %a" User_ext.pp_call_error e

let test_extension_counter_state () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.counter_image in
  let prepare = User_ext.seg_dlsym app ext "bump" in
  let call () =
    match User_ext.call app ~prepare ~arg:0 with
    | Ok (v, _) -> v
    | Error e -> Alcotest.failf "bump failed: %a" User_ext.pp_call_error e
  in
  check_int "first" 1 (call ());
  check_int "second" 2 (call ());
  check_int "third" 3 (call ())

(* --- Kernel-level mechanism ----------------------------------------- *)

let boot_with_task () =
  let w = Palladium.boot () in
  let task = Kernel.create_task (Palladium.kernel w) ~name:"init" in
  (w, task)

let test_kernel_null_extension () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  ignore (Kernel_ext.insmod seg Ulib.null_image);
  match Kernel_ext.invoke ~task seg ~name:"nullext$null_fn" ~arg:7 with
  | Ok (Some (_v, cycles)) -> check_bool "cycles positive" true (cycles > 0)
  | Ok None -> Alcotest.fail "service not found"
  | Error e -> Alcotest.failf "invoke failed: %a" Kernel_ext.pp_invoke_error e

let test_kernel_missing_service_noop () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  match Kernel_ext.invoke ~task seg ~name:"nosuch" ~arg:0 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "phantom service"
  | Error e -> Alcotest.failf "unexpected error: %a" Kernel_ext.pp_invoke_error e

let test_kernel_rogue_confined () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  ignore (Kernel_ext.insmod seg Ulib.rogue_read_image);
  (* Read far beyond the segment limit: the kernel address of the GDT
     area, say 16 MB past the segment size. *)
  let outside = Kernel_ext.seg_size seg + (16 * 1024 * 1024) in
  (match Kernel_ext.invoke ~task seg ~name:"rogueread$peek" ~arg:outside with
  | Error (Kernel_ext.Aborted_fault _) -> ()
  | Ok _ -> Alcotest.fail "out-of-segment read succeeded!"
  | Error e -> Alcotest.failf "unexpected error: %a" Kernel_ext.pp_invoke_error e);
  check_bool "segment dead" true (Kernel_ext.is_dead seg);
  (* Subsequent invocations are refused. *)
  match Kernel_ext.invoke ~task seg ~name:"rogueread$peek" ~arg:0 with
  | Error Kernel_ext.Segment_dead -> ()
  | _ -> Alcotest.fail "dead segment still serving"

let test_kernel_async_queue () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  ignore (Kernel_ext.insmod seg Ulib.counter_image);
  Kernel_ext.post_async seg ~name:"counter$bump" ~arg:0;
  Kernel_ext.post_async seg ~name:"counter$bump" ~arg:0;
  check_int "queued" 2 (Kernel_ext.pending seg);
  check_bool "busy" true (Kernel_ext.is_busy seg);
  let results = Kernel_ext.schedule ~task seg in
  check_int "ran both" 2 (List.length results);
  check_bool "idle again" false (Kernel_ext.is_busy seg);
  match Kernel_ext.invoke ~task seg ~name:"counter$bump" ~arg:0 with
  | Ok (Some (v, _)) -> check_int "state persisted" 3 v
  | _ -> Alcotest.fail "final bump failed"

(* --- GOT protection and shared libraries -------------------------------- *)

let test_extension_calls_libc_via_plt () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  ignore
    (Dyld.dlopen ~kernel:(User_ext.kernel app) ~task:(User_ext.task app)
       ~env:(User_ext.env app) Ulib.libc_image);
  let client = User_ext.seg_dlopen app Ulib.strlen_client_image in
  let prepare = User_ext.seg_dlsym app client "len_of" in
  let buf = User_ext.xmalloc client 32 in
  User_ext.poke_bytes app buf (Bytes.of_string "seven!!\000");
  match User_ext.call app ~prepare ~arg:buf with
  | Ok (v, _) -> check_int "strlen through GOT/PLT from SPL3" 7 v
  | Error e -> Alcotest.failf "plt call failed: %a" User_ext.pp_call_error e

let test_got_write_blocked () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  ignore
    (Dyld.dlopen ~kernel:(User_ext.kernel app) ~task:(User_ext.task app)
       ~env:(User_ext.env app) Ulib.libc_image);
  let client = User_ext.seg_dlopen app Ulib.strlen_client_image in
  let got =
    match client.User_ext.x_handle.Dyld.h_got_base with
    | Some g -> g
    | None -> Alcotest.fail "client has no GOT"
  in
  let rogue = User_ext.seg_dlopen app Ulib.rogue_write_image in
  let poke = User_ext.seg_dlsym app rogue "poke" in
  (match User_ext.call app ~prepare:poke ~arg:got with
  | Error (User_ext.Protection_fault (X86.Fault.Page_readonly _)) -> ()
  | Ok _ -> Alcotest.fail "GOT overwrite succeeded!"
  | Error e -> Alcotest.failf "unexpected: %a" User_ext.pp_call_error e);
  (* but extensions can still *read* the GOT (they must, for the PLT) *)
  let peek_ext = User_ext.seg_dlopen app Ulib.rogue_read_image in
  let peek = User_ext.seg_dlsym app peek_ext "peek" in
  match User_ext.call app ~prepare:peek ~arg:got with
  | Ok (v, _) -> check_bool "GOT readable, bound" true (v <> 0)
  | Error e -> Alcotest.failf "GOT read failed: %a" User_ext.pp_call_error e

(* --- Application services ------------------------------------------------- *)

let test_application_service_from_extension () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  (* The application exposes a "buffered print" style service: it
     reads the extension's argument word and accumulates it. *)
  let accumulated = ref [] in
  let app_ref = ref None in
  let sel =
    User_ext.add_service app ~name:"log_value" ~handler:(fun ~args_base ->
        let app = Option.get !app_ref in
        let v = User_ext.peek_u32 app args_base in
        accumulated := v :: !accumulated;
        v + 1000)
  in
  app_ref := Some app;
  (* the client discovers the gate selector through a shared slot *)
  let pre_ext = User_ext.seg_dlopen app Ulib.rogue_read_image in
  let slot = User_ext.xmalloc pre_ext 4 in
  User_ext.poke_u32 app slot sel;
  let client = User_ext.seg_dlopen app (Ulib.service_client_image ~slot_addr:slot) in
  let use = User_ext.seg_dlsym app client "use_service" in
  (match User_ext.call app ~prepare:use ~arg:77 with
  | Ok (v, _) -> check_int "service result returned to extension" 1077 v
  | Error e -> Alcotest.failf "service call failed: %a" User_ext.pp_call_error e);
  Alcotest.(check (list int)) "service saw the argument" [ 77 ] !accumulated

(* --- Guard (protected memory service) -------------------------------------- *)

let test_guard_bounds () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let g = Guard.create app ~size:128 in
  (match Guard.store g ~offset:64 ~value:0xAB with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "in-bounds store failed");
  (match Guard.load g ~offset:64 with
  | Ok v -> check_int "roundtrip" 0xAB v
  | Error _ -> Alcotest.fail "in-bounds load failed");
  (match Guard.store g ~offset:128 ~value:1 with
  | Error (Guard.Out_of_bounds _) -> ()
  | Ok () -> Alcotest.fail "store past the limit succeeded");
  match Guard.load g ~offset:(-4) with
  | Error (Guard.Out_of_bounds _) | Ok _ ->
      (* negative offsets wrap to huge unsigned values: must be out *)
      (match Guard.load g ~offset:0xFFFF with
      | Error (Guard.Out_of_bounds _) -> ()
      | Ok _ -> Alcotest.fail "far offset succeeded")

(* --- fork / exec with extensions ------------------------------------------- *)

let test_fork_passes_extensions () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.counter_image in
  let prepare = User_ext.seg_dlsym app ext "bump" in
  (match User_ext.call app ~prepare ~arg:0 with
  | Ok (v, _) -> check_int "parent bump" 1 v
  | Error e -> Alcotest.failf "parent call: %a" User_ext.pp_call_error e);
  let kernel = Palladium.kernel w in
  let child = Kernel.fork_task kernel (User_ext.task app) in
  check_bool "child promoted" true (Task.is_promoted child);
  (* the child's address space has the extension areas, with PPLs *)
  let child_ext_areas =
    List.filter
      (fun (a : Vm_area.t) ->
        match a.Vm_area.kind with
        | Vm_area.Ext_code | Vm_area.Ext_data | Vm_area.Ext_stack -> true
        | _ -> false)
      (Address_space.areas child.Task.asp)
  in
  check_bool "extension areas inherited" true (List.length child_ext_areas >= 3);
  List.iter
    (fun (a : Vm_area.t) ->
      check_bool "inherited ext area stays PPL1" true (a.Vm_area.ppl = X86.Privilege.User))
    child_ext_areas

(* --- Kernel extension extras ------------------------------------------------ *)

let test_kernel_service_exposed () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  let kernel = Palladium.kernel w in
  let sel =
    Kernel_ext.expose_service seg ~name:"triple" ~handler:(fun ~args_linear ->
        3 * Kernel.kpeek_u32 kernel args_linear)
  in
  check_bool "selector looks like a gate" true (sel > 0);
  check_bool "registered" true (Kernel_ext.service_selector seg "triple" = Some sel);
  (* a module that calls the service *)
  let image =
    Image.create ~name:"svcuser" ~exports:[ "go" ]
      [
        Asm.L "go";
        Asm.I (Instr.Push (Operand.deref ~disp:4 Reg.ESP));
        Asm.I (Instr.Lcall sel);
        Asm.I (Instr.Alu (Instr.Add, Operand.Reg Reg.ESP, Operand.Imm 4));
        Asm.I Instr.Ret;
      ]
  in
  ignore (Kernel_ext.insmod seg image);
  match Kernel_ext.invoke ~task seg ~name:"svcuser$go" ~arg:14 with
  | Ok (Some (v, _)) -> check_int "kernel service result" 42 v
  | _ -> Alcotest.fail "service-using extension failed"

let test_kernel_shared_area () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  (* module with a shared area that sums two words from it *)
  let image =
    Image.create ~name:"summer"
      ~bss:[ Image.bss_item Pconfig.shared_area_symbol 256 ]
      ~exports:[ "sum2" ]
      [
        Asm.L "sum2";
        Asm.I (Instr.Mov (Operand.Reg Reg.EDX, Operand.deref ~disp:4 Reg.ESP));
        Asm.I (Instr.Mov (Operand.Reg Reg.EAX, Operand.deref Reg.EDX));
        Asm.I (Instr.Alu (Instr.Add, Operand.Reg Reg.EAX, Operand.deref ~disp:4 Reg.EDX));
        Asm.I Instr.Ret;
      ]
  in
  ignore (Kernel_ext.insmod seg image);
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 30l;
  Bytes.set_int32_le b 4 12l;
  Kernel_ext.write_shared seg ~off:0 b;
  let shared_off =
    match Kernel_ext.shared_linear seg with
    | Some l -> Kernel_ext.to_segment_offset seg l
    | None -> Alcotest.fail "shared area missing"
  in
  match Kernel_ext.invoke ~task seg ~name:"summer$sum2" ~arg:shared_off with
  | Ok (Some (v, _)) -> check_int "sum through shared area" 42 v
  | _ -> Alcotest.fail "shared-area extension failed"

let test_kernel_ext_timeout_aborts () =
  let w, task = boot_with_task () in
  let seg = Palladium.create_kernel_segment w in
  ignore (Kernel_ext.insmod seg Ulib.rogue_loop_image);
  match Kernel_ext.invoke ~task seg ~name:"rogueloop$spin" ~arg:0 with
  | Error (Kernel_ext.Aborted_timeout _) ->
      check_bool "segment aborted" true (Kernel_ext.is_dead seg)
  | _ -> Alcotest.fail "expected timeout abort"

(* --- misc API edges ----------------------------------------------------------- *)

let test_seg_dlsym_caches_stubs () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.null_image in
  let p1 = User_ext.seg_dlsym app ext "null_fn" in
  let p2 = User_ext.seg_dlsym app ext "null_fn" in
  check_int "same Prepare for the same function" p1 p2

let test_xmalloc_exhaustion () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.null_image in
  match
    for _ = 1 to 1000 do
      ignore (User_ext.xmalloc ext 4096)
    done
  with
  | () -> Alcotest.fail "expected heap exhaustion"
  | exception Invalid_argument _ -> ()

let test_multiple_extensions_coexist () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let c = User_ext.seg_dlopen app Ulib.counter_image in
  let s = User_ext.seg_dlopen app Ulib.strrev_image in
  let bump = User_ext.seg_dlsym app c "bump" in
  let rev = User_ext.seg_dlsym app s "strrev" in
  let buf = User_ext.xmalloc s 16 in
  User_ext.poke_bytes app buf (Bytes.of_string "ab\000");
  (match User_ext.call app ~prepare:bump ~arg:0 with
  | Ok (v, _) -> check_int "counter" 1 v
  | Error e -> Alcotest.failf "bump: %a" User_ext.pp_call_error e);
  (match User_ext.call app ~prepare:rev ~arg:buf with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rev: %a" User_ext.pp_call_error e);
  Alcotest.(check string)
    "both extensions worked" "ba"
    (Bytes.to_string (User_ext.peek_bytes app buf 2));
  check_int "call count tracked" 2 (User_ext.calls app)

let test_protected_call_cost_bounds () =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"app" in
  let ext = User_ext.seg_dlopen app Ulib.null_image in
  let prepare = User_ext.seg_dlsym app ext "null_fn" in
  ignore (User_ext.call app ~prepare ~arg:0);
  match User_ext.call app ~prepare ~arg:0 with
  | Ok (_, cycles) ->
      (* whole warm invocation incl. trampoline and hlt; the paper's
         protected call is ~142 cycles *)
      check_bool
        (Printf.sprintf "warm call %d cycles within [140, 200]" cycles)
        true
        (cycles >= 140 && cycles <= 200)
  | Error e -> Alcotest.failf "call: %a" User_ext.pp_call_error e

let () =
  Alcotest.run "palladium"
    [
      ( "user-ext",
        [
          Alcotest.test_case "app boots and promotes" `Quick test_app_boots;
          Alcotest.test_case "null extension call" `Quick test_null_extension_call;
          Alcotest.test_case "strrev through shared heap" `Quick
            test_strrev_extension;
          Alcotest.test_case "rogue write to app data segvs" `Quick
            test_rogue_write_app_data_segvs;
          Alcotest.test_case "write to own heap allowed" `Quick
            test_rogue_write_own_heap_ok;
          Alcotest.test_case "infinite loop hits time limit" `Quick
            test_rogue_infinite_loop_times_out;
          Alcotest.test_case "direct syscall rejected (taskSPL)" `Quick
            test_rogue_syscall_rejected;
          Alcotest.test_case "extension keeps state across calls" `Quick
            test_extension_counter_state;
        ] );
      ( "kernel-ext",
        [
          Alcotest.test_case "null kernel extension" `Quick
            test_kernel_null_extension;
          Alcotest.test_case "missing service is a no-op" `Quick
            test_kernel_missing_service_noop;
          Alcotest.test_case "rogue kernel ext confined by segment" `Quick
            test_kernel_rogue_confined;
          Alcotest.test_case "async request queue" `Quick test_kernel_async_queue;
          Alcotest.test_case "exposed kernel service" `Quick
            test_kernel_service_exposed;
          Alcotest.test_case "shared data area" `Quick test_kernel_shared_area;
          Alcotest.test_case "timeout aborts segment" `Quick
            test_kernel_ext_timeout_aborts;
        ] );
      ( "got-and-libraries",
        [
          Alcotest.test_case "extension calls libc via PLT" `Quick
            test_extension_calls_libc_via_plt;
          Alcotest.test_case "GOT write blocked, read allowed" `Quick
            test_got_write_blocked;
        ] );
      ( "services",
        [
          Alcotest.test_case "application service from extension" `Quick
            test_application_service_from_extension;
        ] );
      ( "guard",
        [ Alcotest.test_case "segment-bounded region" `Quick test_guard_bounds ] );
      ( "process",
        [
          Alcotest.test_case "fork passes extensions" `Quick
            test_fork_passes_extensions;
        ] );
      ( "api",
        [
          Alcotest.test_case "seg_dlsym caches stubs" `Quick
            test_seg_dlsym_caches_stubs;
          Alcotest.test_case "xmalloc exhaustion" `Quick test_xmalloc_exhaustion;
          Alcotest.test_case "multiple extensions coexist" `Quick
            test_multiple_extensions_coexist;
          Alcotest.test_case "protected call cost bounds" `Quick
            test_protected_call_cost_bounds;
        ] );
    ]
