(* CI smoke test: drive every bench subcommand with tiny iteration
   counts and validate the BENCH_<name>.json artifact each one writes —
   it must parse, carry the schema tag, and hold a counter snapshot.
   Guards the bench harness (and its JSON emission) against bit-rot
   without paying full benchmark run times under dune runtest. *)

module J = Obs.Json

let out_dir = "bench_json_out"

let fail fmt = Printf.ksprintf failwith fmt

let mem name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let load name =
  let path = Filename.concat out_dir (Obs.Bench_json.file_name name) in
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match J.of_string s with
  | Ok doc -> doc
  | Error e -> fail "%s does not parse: %s" path e

let as_int name field j =
  match J.to_int j with
  | Some i -> i
  | None -> fail "%s: histogram %s is not an int" name field

let validate name =
  let doc = load name in
  (match J.to_str (mem "schema" doc) with
  | Some s when s = Obs.Bench_json.schema_version -> ()
  | Some s -> fail "%s: wrong schema %S" name s
  | None -> fail "%s: schema is not a string" name);
  (match J.to_str (mem "name" doc) with
  | Some n when n = name -> ()
  | _ -> fail "%s: name field mismatch" name);
  (match J.keys (mem "counters" doc) with
  | [] -> fail "%s: empty counter snapshot" name
  | _ -> ());
  ignore (mem "counters_delta" doc);
  (* every artifact carries a latency distribution of its primary
     metric with coherent percentiles *)
  let h = mem "histogram" doc in
  (match J.to_str (mem "metric" h) with
  | Some "" | None -> fail "%s: histogram metric missing" name
  | Some _ -> ());
  let count = as_int name "count" (mem "count" h) in
  if count < 1 then fail "%s: empty histogram" name;
  let p50 = as_int name "p50" (mem "p50" h) in
  let p90 = as_int name "p90" (mem "p90" h) in
  let p99 = as_int name "p99" (mem "p99" h) in
  let mx = as_int name "max" (mem "max" h) in
  if not (p50 <= p90 && p90 <= p99 && p99 <= mx) then
    fail "%s: percentiles not monotone (p50=%d p90=%d p99=%d max=%d)" name p50
      p90 p99 mx;
  ignore (mem "mean" h);
  (match mem "buckets" h with
  | J.List (_ :: _) -> ()
  | _ -> fail "%s: histogram buckets missing" name);
  Printf.printf "bench-smoke %-10s ok\n%!" name

let () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let json_dir = out_dir in
  let total = Bench_runs.table1 ~json_dir () in
  if total <= 0 then fail "table1: non-positive protected call cost";
  validate "table1";
  Bench_runs.table2 ~json_dir ~runs:2 ();
  validate "table2";
  Bench_runs.table3 ~json_dir
    ~protected_call_usec:(float_of_int total /. float_of_int Cycles.mhz)
    ();
  validate "table3";
  Bench_runs.figure7 ~json_dir ();
  validate "figure7";
  Bench_runs.micro ~json_dir ();
  validate "micro";
  Bench_runs.ipc_cmp ~json_dir ~palladium_cycles:total ();
  validate "ipc";
  Bench_runs.ablation ~json_dir ~sizes:[ 32 ] ();
  validate "ablation";
  Bench_runs.sfi ~json_dir ~packets:12 ();
  validate "sfi";
  Bench_runs.backends ~json_dir ~packets:8 ~calls:5 ~requests:60 ();
  validate "backends";
  (* the backend matrix must cover enough of the space, agree across
     backends, and show the protection-key transfer beating the
     segmentation gate pair *)
  let doc = load "backends" in
  (match mem "backends" doc with
  | J.List rows when List.length rows >= 3 ->
      List.iter
        (fun row ->
          (match J.to_str (mem "backend" row) with
          | Some _ -> ()
          | None -> fail "backends: row without a backend name");
          (match mem "fault_contained" row with
          | J.Bool true -> ()
          | _ -> fail "backends: a backend failed to contain the rogue store");
          match J.to_int (mem "invariants_checked" (mem "audit" row)) with
          | Some n when n > 0 -> ()
          | _ -> fail "backends: audit coverage missing")
        rows
  | J.List rows -> fail "backends: only %d backends covered" (List.length rows)
  | _ -> fail "backends: backend rows missing");
  (match mem "workloads" doc with
  | J.List ws when List.length ws >= 3 -> ()
  | _ -> fail "backends: fewer than 3 workloads");
  (match mem "agreement" doc with
  | J.Bool true -> ()
  | _ -> fail "backends: cross-backend agreement bit not set");
  (match mem "mpk_cheaper_than_seg" doc with
  | J.Bool true -> ()
  | _ -> fail "backends: mpk transfer not cheaper than segmentation");
  Bench_runs.audit ~json_dir ~full_iters:3 ();
  validate "audit";
  (* a clean world must audit clean, and skipping must beat auditing *)
  let doc = load "audit" in
  (match J.to_int (mem "findings" doc) with
  | Some 0 -> ()
  | Some n -> fail "audit: clean bench world has %d findings" n
  | None -> fail "audit: findings missing");
  (match J.to_float (mem "speedup" (mem "incremental" doc)) with
  | Some s when s > 1.0 -> ()
  | Some s -> fail "audit: incremental skip not faster than full audit (%.2fx)" s
  | None -> fail "audit: speedup missing");
  (* the headline claim of the verifier benchmark: elision keeps the
     guard count strictly below blanket SFI *)
  let doc = load "sfi" in
  let guards = mem "guards" doc in
  (match (J.to_int (mem "sfi_full" guards), J.to_int (mem "sfi_verified" guards)) with
  | Some full, Some ver when ver < full -> ()
  | Some full, Some ver ->
      fail "sfi: verified guard count %d not below full %d" ver full
  | _ -> fail "sfi: guard counts missing");
  (* the soundness oracle: a small batch must verify, execute under
     both engines and come back violation-free *)
  let snd = Bench_runs.soundness ~json_dir ~specimens:30 () in
  validate "verify";
  if snd.Soundness.s_runs = 0 then fail "soundness: no engine runs";
  let doc = load "verify" in
  let body = mem "soundness" doc in
  (match J.to_int (mem "violations" body) with
  | Some 0 -> ()
  | Some n -> fail "soundness: %d contract violations" n
  | None -> fail "soundness: violations missing");
  (match J.to_int (mem "total" (mem "accesses" body)) with
  | Some n when n > 0 -> ()
  | _ -> fail "soundness: no accesses classified");
  (* the fleet runner: a 4-domain parallel sweep must reproduce the
     serial per-world results bit-for-bit, and the merged histogram
     must account for every request *)
  let outcome = Bench_runs.parallel ~json_dir ~domains:4 () in
  validate "parallel";
  if not outcome.Bench_runs.par_deterministic then
    fail "parallel: per-world results diverged from the serial run";
  if outcome.Bench_runs.par_merged_requests <> outcome.Bench_runs.par_serial_requests
  then
    fail "parallel: merged request count %d does not match serial total %d"
      outcome.Bench_runs.par_merged_requests
      outcome.Bench_runs.par_serial_requests;
  let doc = load "parallel" in
  (match mem "deterministic" doc with
  | J.Bool true -> ()
  | _ -> fail "parallel: artifact does not record determinism");
  (* speedup is only meaningful with real cores; single-core runners
     (and this container) pay pure domain-switch overhead *)
  if Domain.recommended_domain_count () >= 2 then begin
    if outcome.Bench_runs.par_speedup < 1.3 then
      fail "parallel: %d-core speedup %.2fx below 1.3x threshold"
        (Domain.recommended_domain_count ())
        outcome.Bench_runs.par_speedup
  end
  else
    Printf.printf
      "bench-smoke parallel: single core, skipping speedup assertion\n%!";
  (* the sampled time series: per-world series from a parallel fleet
     must be bit-identical to the serial run, and the merged bcache
     series must show cache warm-up (first busy interval strictly
     below steady state) *)
  let tl =
    Bench_runs.timeline ~json_dir ~domains:2 ~batches:4 ~calls:12 ~requests:64
      ()
  in
  validate "timeline";
  if not tl.Bench_runs.tl_deterministic then
    fail "timeline: sampled series diverged from the serial run";
  if not (Bench_runs.tl_warmed tl) then
    fail "timeline: no bcache warm-up (first %.4f, steady %.4f)"
      tl.Bench_runs.tl_first_ratio tl.Bench_runs.tl_steady_ratio;
  if tl.Bench_runs.tl_samples < tl.Bench_runs.tl_worlds * 4 then
    fail "timeline: only %d sampled points" tl.Bench_runs.tl_samples;
  let doc = load "timeline" in
  (match mem "deterministic" doc with
  | J.Bool true -> ()
  | _ -> fail "timeline: artifact does not record determinism");
  (match mem "warmed" (mem "warmup" doc) with
  | J.Bool true -> ()
  | _ -> fail "timeline: artifact does not record the warm-up");
  (match J.member "series" (mem "series" doc) with
  | Some (J.List (_ :: _)) -> ()
  | _ -> fail "timeline: artifact series missing");
  (* the basic-block engine: every workload must produce bit-identical
     architectural totals under both engines, and the compute-heavy
     protected-call sweep must clear a 3x simulated-MIPS floor *)
  let fp =
    Bench_runs.fastpath ~json_dir ~machine_iters:20_000 ~calls:30 ~sim_calls:10
      ~requests:2_000 ()
  in
  validate "fastpath";
  List.iter
    (fun r ->
      if not (Bench_runs.fp_identical r) then
        fail "fastpath: %s cycle/instruction totals differ between engines"
          r.Bench_runs.fp_workload)
    fp.Bench_runs.fp_rows;
  let doc = load "fastpath" in
  (match mem "rows" doc with
  | J.List (_ :: _) -> ()
  | _ -> fail "fastpath: artifact rows missing");
  let pc = fp.Bench_runs.fp_protected in
  (* speedup is a wall-clock ratio: only assert it when the interpreter
     run is long enough for Sys.time to be meaningful *)
  if pc.Bench_runs.fp_interp.Bench_runs.es_sec < 0.01 then
    Printf.printf
      "bench-smoke fastpath: interp run too short to time, skipping speedup \
       assertion\n\
       %!"
  else begin
    let s = Bench_runs.fp_speedup pc in
    if s < 3.0 then
      fail "fastpath: protected-call block-engine speedup %.2fx below 3x floor"
        s
  end;
  print_endline "bench-smoke: all subcommands emitted valid artifacts"
