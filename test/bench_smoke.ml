(* CI smoke test: drive every bench subcommand with tiny iteration
   counts and validate the BENCH_<name>.json artifact each one writes —
   it must parse, carry the schema tag, and hold a counter snapshot.
   Guards the bench harness (and its JSON emission) against bit-rot
   without paying full benchmark run times under dune runtest. *)

module J = Obs.Json

let out_dir = "bench_json_out"

let fail fmt = Printf.ksprintf failwith fmt

let mem name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let load name =
  let path = Filename.concat out_dir (Obs.Bench_json.file_name name) in
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match J.of_string s with
  | Ok doc -> doc
  | Error e -> fail "%s does not parse: %s" path e

let validate name =
  let doc = load name in
  (match J.to_str (mem "schema" doc) with
  | Some s when s = Obs.Bench_json.schema_version -> ()
  | Some s -> fail "%s: wrong schema %S" name s
  | None -> fail "%s: schema is not a string" name);
  (match J.to_str (mem "name" doc) with
  | Some n when n = name -> ()
  | _ -> fail "%s: name field mismatch" name);
  (match J.keys (mem "counters" doc) with
  | [] -> fail "%s: empty counter snapshot" name
  | _ -> ());
  ignore (mem "counters_delta" doc);
  Printf.printf "bench-smoke %-10s ok\n%!" name

let () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let json_dir = out_dir in
  let total = Bench_runs.table1 ~json_dir () in
  if total <= 0 then fail "table1: non-positive protected call cost";
  validate "table1";
  Bench_runs.table2 ~json_dir ~runs:2 ();
  validate "table2";
  Bench_runs.table3 ~json_dir
    ~protected_call_usec:(float_of_int total /. float_of_int Cycles.mhz)
    ();
  validate "table3";
  Bench_runs.figure7 ~json_dir ();
  validate "figure7";
  Bench_runs.micro ~json_dir ();
  validate "micro";
  Bench_runs.ipc_cmp ~json_dir ~palladium_cycles:total ();
  validate "ipc";
  Bench_runs.ablation ~json_dir ~sizes:[ 32 ] ();
  validate "ablation";
  print_endline "bench-smoke: all subcommands emitted valid artifacts"
