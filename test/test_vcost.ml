(* Tests for the certified-resource-bound layer: the Vcfg loop API on
   nested and irreducible control flow, finiteness and saturation of
   the WCET accumulators (including deterministic overflow witnesses —
   trip products sum toward native-int range), a qcheck γ-soundness
   property tying certified bounds to concrete Cycles charging on the
   simulated CPU, the cost oracle's ability to catch planted lying
   bounds, and the budget-driven watchdog abort path (segment killed,
   gates cleared, world still audits clean). *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let i x = Asm.I x

let reg r = Operand.Reg r

let imm v = Operand.Imm v

(* --- Vcfg: natural loops ------------------------------------------------ *)

(* inner self-loop nested in an outer loop:
     f:      eax := 0
     outer:  ebx := 0
     inner:  ebx += 1; cmp ebx,10; jne inner
             eax += 1; cmp eax,5;  jne outer
             ret *)
let nested_prog =
  [
    Asm.L "f";
    i (Instr.Mov (reg Reg.EAX, imm 0));
    Asm.L "outer";
    i (Instr.Mov (reg Reg.EBX, imm 0));
    Asm.L "inner";
    i (Instr.Alu (Instr.Add, reg Reg.EBX, imm 1));
    i (Instr.Cmp (reg Reg.EBX, imm 10));
    i (Instr.Jcc (Instr.Ne, Instr.Label "inner"));
    i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 1));
    i (Instr.Cmp (reg Reg.EAX, imm 5));
    i (Instr.Jcc (Instr.Ne, Instr.Label "outer"));
    i Instr.Ret;
  ]

let cfg_of prog = Vcfg.build ~org:0 ~externs:(fun _ -> false) prog

let test_nested_loops () =
  let cfg = cfg_of nested_prog in
  let entry =
    match Vcfg.entry_blocks cfg ~entries:[ "f" ] with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected a single entry block"
  in
  let loops, irreducible = Vcfg.loops cfg ~entry in
  check_int "no irreducible edges" 0 (List.length irreducible);
  check_int "two natural loops" 2 (List.length loops);
  (* loops come back sorted by header; the outer loop's header block
     precedes the inner's, and the inner body nests inside the outer *)
  let outer, inner =
    match loops with [ a; b ] -> (a, b) | _ -> assert false
  in
  check_bool "distinct headers" true (outer.Vcfg.l_header <> inner.Vcfg.l_header);
  check_bool "headers in their own bodies" true
    (List.mem outer.Vcfg.l_header outer.Vcfg.l_body
    && List.mem inner.Vcfg.l_header inner.Vcfg.l_body);
  check_bool "inner body nests inside the outer body" true
    (List.for_all (fun b -> List.mem b outer.Vcfg.l_body) inner.Vcfg.l_body);
  check_bool "outer body is strictly larger" true
    (List.length outer.Vcfg.l_body > List.length inner.Vcfg.l_body);
  (* dominator sanity: both headers are dominated by the entry, and
     the outer header dominates the inner one *)
  let idom = Vcfg.dominators cfg ~entry in
  check_bool "entry dominates the outer header" true
    (Vcfg.dominates idom entry outer.Vcfg.l_header);
  check_bool "outer header dominates the inner header" true
    (Vcfg.dominates idom outer.Vcfg.l_header inner.Vcfg.l_header);
  check_int "two back edges" 2 (List.length (Vcfg.back_edges cfg ~entry))

(* a two-block cycle entered at both blocks: the retreating edge's
   destination does not dominate its source, so no natural loop exists
   and the edge must be reported in the irreducible remainder:
     f: jeq a
     b: jmp a
     a: jmp b *)
let irreducible_prog =
  [
    Asm.L "f";
    i (Instr.Jcc (Instr.Eq, Instr.Label "a"));
    Asm.L "b";
    i (Instr.Jmp (Instr.Label "a"));
    Asm.L "a";
    i (Instr.Jmp (Instr.Label "b"));
  ]

let test_irreducible_cycle () =
  let cfg = cfg_of irreducible_prog in
  let entry =
    match Vcfg.entry_blocks cfg ~entries:[ "f" ] with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected a single entry block"
  in
  check_int "one retreating edge" 1 (List.length (Vcfg.back_edges cfg ~entry));
  let loops, irreducible = Vcfg.loops cfg ~entry in
  check_int "no natural loops" 0 (List.length loops);
  check_int "the cycle is irreducible" 1 (List.length irreducible);
  (* and the cost analysis refuses to certify it *)
  let r =
    Verify.verify ~entries:[ "f" ] ~region:(0, 0x1000) ~name:"irr"
      irreducible_prog
  in
  check_bool "irreducible flow is unbounded" true
    (r.Verify.r_bounds.Vcost.b_wcet_cycles = Vcost.Unbounded)

(* --- certified bounds on reports --------------------------------------- *)

let oracle_report ?org name prog =
  Verify.verify ?org ~entries:[ "f" ] ~region:(0, Soundness.region_hi)
    ~lint_privileged:false ~name prog

let test_nested_loop_bounds () =
  let r = oracle_report "nested" nested_prog in
  check_bool "verifies" true (Verify.ok r);
  let b = r.Verify.r_bounds in
  check_int "both loops in the table" 2 (List.length b.Vcost.b_loops);
  check_bool "both loops bounded" true
    (List.for_all (fun l -> l.Vcost.lb_trips <> Vcost.Unbounded) b.Vcost.b_loops);
  match (b.Vcost.b_wcet_cycles, b.Vcost.b_max_instrs, b.Vcost.b_max_stack_bytes) with
  | Vcost.Finite w, Vcost.Finite n, Vcost.Finite s ->
      check_bool "positive wcet" true (w > 0);
      (* 5 outer x 10 inner iterations of a 3-instruction body give a
         floor on both accumulators *)
      check_bool "wcet covers the nest" true (w >= 150);
      check_bool "instr bound covers the nest" true (n >= 150);
      check_int "leaf routine needs no stack" 0 s
  | _ -> Alcotest.fail "nested loop nest should certify finite"

(* Deterministic overflow witnesses: the accumulators multiply trip
   counts that individually fit an int but whose products do not.  A
   single 2^30-trip loop stays finite; nesting two of them (2^60 body
   executions) must saturate to Unbounded — never wrap to a negative
   or small "certified" bound. *)
let counted_loop ~label ~counter ~trips body =
  [
    i (Instr.Mov (reg counter, imm 0));
    Asm.L label;
  ]
  @ body
  @ [
      i (Instr.Alu (Instr.Add, reg counter, imm 1));
      i (Instr.Cmp (reg counter, imm trips));
      i (Instr.Jcc (Instr.Ne, Instr.Label label));
    ]

let test_trip_product_overflow_witness () =
  let huge = 1 lsl 30 in
  let single =
    (Asm.L "f" :: counted_loop ~label:"lp" ~counter:Reg.EAX ~trips:huge [])
    @ [ i Instr.Ret ]
  in
  let r1 = oracle_report "huge1" single in
  (match r1.Verify.r_bounds.Vcost.b_wcet_cycles with
  | Vcost.Finite w -> check_bool "2^30 trips certify finite and positive" true (w >= huge)
  | Vcost.Unbounded -> Alcotest.fail "single 2^30-trip loop should stay finite");
  let nested =
    (Asm.L "f"
    :: counted_loop ~label:"lp_o" ~counter:Reg.EAX ~trips:huge
         (counted_loop ~label:"lp_i" ~counter:Reg.EBX ~trips:huge []))
    @ [ i Instr.Ret ]
  in
  let r2 = oracle_report "huge2" nested in
  let b = r2.Verify.r_bounds in
  (* the trip product exceeds the saturation cap: the only sound
     finite answers are >= 2^60, which the cap forbids — so Unbounded *)
  check_bool "2^60 body executions saturate to Unbounded" true
    (b.Vcost.b_wcet_cycles = Vcost.Unbounded);
  (match b.Vcost.b_max_instrs with
  | Vcost.Unbounded -> ()
  | Vcost.Finite n ->
      check_bool "a finite instr bound must not have wrapped" true (n >= 0));
  (* each loop's own trip bound is still individually finite *)
  check_bool "per-loop trips stay finite" true
    (List.for_all (fun l -> l.Vcost.lb_trips <> Vcost.Unbounded) b.Vcost.b_loops)

let test_saturating_accumulators () =
  (* the raw accumulator primitives the analysis sums cycle bands
     with: closed at the cap, never negative, never wrapping *)
  check_int "sat_add caps" Vcost.cap (Vcost.sat_add (Vcost.cap - 1) (Vcost.cap - 1));
  check_int "sat_add absorbs the cap" Vcost.cap (Vcost.sat_add Vcost.cap Vcost.cap);
  check_int "sat_mul caps 2^31 * 2^31" Vcost.cap (Vcost.sat_mul (1 lsl 31) (1 lsl 31));
  check_int "sat_mul zero annihilates" 0 (Vcost.sat_mul 0 Vcost.cap);
  check_int "sat_mul small stays exact" 12 (Vcost.sat_mul 3 4);
  check_bool "capped value reads back Unbounded" true (Vcost.fin Vcost.cap = Vcost.Unbounded);
  check_bool "below the cap stays Finite" true
    (Vcost.fin (Vcost.cap - 1) = Vcost.Finite (Vcost.cap - 1))

(* --- qcheck: γ-soundness of certified bounds vs concrete charging ------- *)

(* Random verifiable programs (register moves, ALU ops, balanced
   push/pop pairs, small counted loops) are verified for bounds and
   then executed in the oracle world; the concrete run's architectural
   cycles, retired instructions and stack excursion must all sit
   within the certified bounds, under both engines.  This is the cost
   analogue of PR 8's Vdomain/Vtaint membership properties: the
   concretisation of a certified bound must contain every run. *)

type elem =
  | E_mov of Reg.t * int
  | E_alu of Instr.alu * Reg.t * int
  | E_pushpop of Reg.t
  | E_nop
  | E_loop of int (* trip count *)

let render_elem idx = function
  | E_mov (r, n) -> [ i (Instr.Mov (reg r, imm n)) ]
  | E_alu (op, r, n) -> [ i (Instr.Alu (op, reg r, imm n)) ]
  | E_pushpop r -> [ i (Instr.Push (reg r)); i (Instr.Pop (reg r)) ]
  | E_nop -> [ i Instr.Nop ]
  | E_loop trips ->
      counted_loop ~label:(Printf.sprintf "qc%d" idx) ~counter:Reg.ECX ~trips []

let gen_elem =
  let open QCheck.Gen in
  let r = oneofl [ Reg.EAX; Reg.EBX; Reg.EDX; Reg.ESI; Reg.EDI ] in
  let op = oneofl [ Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Xor ] in
  frequency
    [
      (3, map2 (fun r n -> E_mov (r, n)) r (int_bound 0xFFFF));
      (3, map3 (fun op r n -> E_alu (op, r, n)) op r (int_bound 0xFFFF));
      (2, map (fun r -> E_pushpop r) r);
      (1, return E_nop);
      (1, map (fun t -> E_loop (1 + t)) (int_bound 7));
    ]

let arb_cost_prog =
  QCheck.make
    ~print:(fun es -> Printf.sprintf "%d elements" (List.length es))
    QCheck.Gen.(list_size (int_bound 12) gen_elem)

let hlt_cycles = Cycles.pentium.Cycles.hlt

(* Run [prog] (which must end in Ret from entry [f]) to a halt pad in
   the oracle world and return (arch cycles, retired, stack bytes)
   net of the pad's own hlt. *)
let run_to_pad engine prog =
  let n_instrs =
    List.length (List.filter (function Asm.I _ -> true | Asm.L _ -> false) prog)
  in
  let halt_addr = Soundness.org + (Instr.size * n_instrs) in
  let full = prog @ [ Asm.L "qc$halt"; i Instr.Hlt ] in
  let setup cpu =
    let ds = Cpu.seg_reg cpu Reg.DS in
    let esp = 0x7F00 - 4 in
    Cpu.write_mem cpu ds ~offset:esp ~size:4 halt_addr;
    Cpu.set_reg cpu Reg.ESP esp
  in
  let r = Soundness.measure ~engine ~setup ~entry:"f" full in
  match r.Soundness.x_stop with
  | Cpu.Halted ->
      (r.Soundness.x_cycles - hlt_cycles, r.Soundness.x_retired - 1, r.Soundness.x_stack)
  | _ -> Alcotest.fail "specimen did not reach the halt pad"

let prop_bounds_contain_runs =
  QCheck.Test.make ~count:60
    ~name:"certified bounds contain every concrete run" arb_cost_prog
    (fun elems ->
      let prog =
        (Asm.L "f" :: List.concat (List.mapi render_elem elems)) @ [ i Instr.Ret ]
      in
      let report = oracle_report ~org:Soundness.org "qc" prog in
      if not (Verify.ok report) then
        QCheck.Test.fail_reportf "generated program rejected: %a"
          Verify.pp_report report;
      let b = report.Verify.r_bounds in
      let wcet, instrs, stack =
        match
          (b.Vcost.b_wcet_cycles, b.Vcost.b_max_instrs, b.Vcost.b_max_stack_bytes)
        with
        | Vcost.Finite w, Vcost.Finite n, Vcost.Finite s -> (w, n, s)
        | _ -> QCheck.Test.fail_reportf "loop-free specimen certified unbounded"
      in
      List.for_all
        (fun engine ->
          let cycles, retired, depth = run_to_pad engine prog in
          if cycles > wcet then
            QCheck.Test.fail_reportf "run cost %d cycles above the WCET %d"
              cycles wcet
          else if retired > instrs then
            QCheck.Test.fail_reportf "run retired %d instrs above the bound %d"
              retired instrs
          else if depth > stack then
            QCheck.Test.fail_reportf "run used %d stack bytes above the bound %d"
              depth stack
          else true)
        [ Cpu.Interp; Cpu.Blocks ])

(* --- the oracle catches planted lying bounds ---------------------------- *)

(* A green cost oracle is only meaningful if a lying bound is caught:
   re-run a straight-line specimen under fabricated tiny bounds and
   every engine must report cost violations, while the honestly
   certified bounds stay clean. *)
let test_planted_cost_lie_detected () =
  let prog =
    [
      Asm.L "entry";
      i (Instr.Mov (reg Reg.EAX, imm 7));
      i (Instr.Push (reg Reg.EAX));
      i (Instr.Pop (reg Reg.EBX));
      i Instr.Hlt;
    ]
  in
  let report =
    Verify.verify ~org:Soundness.org ~entries:[ "entry" ]
      ~region:(0, Soundness.region_hi) ~lint_privileged:false ~name:"costlie"
      prog
  in
  let asm = Asm.assemble ~org:Soundness.org prog in
  let static = Soundness.static_table report in
  let elide _ = false in
  List.iter
    (fun engine ->
      let r =
        Soundness.execute ~bounds:report.Verify.r_bounds engine asm ~static
          ~elide ~fuel:100
      in
      check_int "honest bounds: no violations" 0
        (List.length r.Soundness.x_violations))
    [ Cpu.Interp; Cpu.Blocks ];
  let lie =
    {
      Vcost.b_wcet_cycles = Vcost.Finite 1;
      b_best_cycles = 0;
      b_max_stack_bytes = Vcost.Finite 0;
      b_max_instrs = Vcost.Finite 1;
      b_loops = [];
    }
  in
  List.iter
    (fun engine ->
      let r = Soundness.execute ~bounds:lie engine asm ~static ~elide ~fuel:100 in
      check_bool "planted lying bounds detected" true
        (List.exists
           (fun v -> String.length v >= 5 && String.sub v 0 5 = "cost:")
           r.Soundness.x_violations))
    [ Cpu.Interp; Cpu.Blocks ]

(* --- budget-driven watchdog abort --------------------------------------- *)

(* An unbounded extension admitted under Warn must die at the world's
   cycle budget (not the flat administrative limit), the segment must
   be reclaimed, and the world must still audit clean afterward: the
   abort path cleared the extension's gates and descriptors. *)
let test_budget_abort_then_clean_audit () =
  let budget = 2000 in
  let w = Palladium.boot ~budget_policy:Vcost.Warn ~budget_cycles:budget () in
  let kernel = Palladium.kernel w in
  let task = Kernel.create_task kernel ~name:"t" in
  let seg = Palladium.create_kernel_segment w in
  ignore (Kernel_ext.insmod seg Ulib.rogue_loop_image);
  (match Kernel_ext.invoke ~task seg ~name:"rogueloop$spin" ~arg:0 with
  | Error (Kernel_ext.Aborted_timeout e) ->
      check_bool "fuel clamped to the budget, not the flat default" true
        (e.Watchdog.wd_limit <= budget
        && e.Watchdog.wd_limit < Pconfig.default_time_limit_cycles)
  | _ -> Alcotest.fail "expected a watchdog timeout abort");
  check_bool "segment dead" true (Kernel_ext.is_dead seg);
  check_int "one abort recorded" 1 (Kernel_ext.aborts seg);
  (match Kernel_ext.invoke ~task seg ~name:"rogueloop$spin" ~arg:0 with
  | Error Kernel_ext.Segment_dead -> ()
  | _ -> Alcotest.fail "dead segment must refuse further invocations");
  let r = Audit.Engine.run (Paudit.capture kernel) in
  check_int "world audits clean after the abort" 0
    (List.length r.Audit.Engine.rp_findings)

(* And the positive side of fuel seeding: a certified-finite module
   under an active budget policy keeps working within its bound. *)
let test_bounded_module_runs_under_budget () =
  let w = Palladium.boot ~budget_policy:Vcost.Reject () in
  let task = Kernel.create_task (Palladium.kernel w) ~name:"t" in
  let seg = Palladium.create_kernel_segment w in
  let km = Kernel_ext.insmod seg Ulib.counter_image in
  (match km.Kernel_ext.m_bounds with
  | Some b -> check_bool "counter certifies finite" true
      (b.Vcost.b_wcet_cycles <> Vcost.Unbounded)
  | None -> Alcotest.fail "bounds missing under an active budget policy");
  match Kernel_ext.invoke ~task seg ~name:"counter$bump" ~arg:0 with
  | Ok (Some (v, _)) -> check_int "bump returns the new count" 1 v
  | _ -> Alcotest.fail "bounded module should run to completion"

let () =
  Alcotest.run "vcost"
    [
      ( "vcfg",
        [
          Alcotest.test_case "nested natural loops" `Quick test_nested_loops;
          Alcotest.test_case "irreducible cycle" `Quick test_irreducible_cycle;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "nested loop nest certifies finite" `Quick
            test_nested_loop_bounds;
          Alcotest.test_case "trip-product overflow witness" `Quick
            test_trip_product_overflow_witness;
          Alcotest.test_case "saturating accumulators" `Quick
            test_saturating_accumulators;
        ] );
      ( "gamma-soundness",
        [ QCheck_alcotest.to_alcotest prop_bounds_contain_runs ] );
      ( "oracle",
        [
          Alcotest.test_case "planted lying bounds detected" `Quick
            test_planted_cost_lie_detected;
        ] );
      ( "budget",
        [
          Alcotest.test_case "budget abort then clean audit" `Quick
            test_budget_abort_then_clean_audit;
          Alcotest.test_case "bounded module runs under budget" `Quick
            test_bounded_module_runs_under_budget;
        ] );
    ]
