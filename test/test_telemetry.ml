(* Tests for the live-telemetry layer: the bounded Timeseries ring and
   its sample-exact merge, the Collector's boundary sampling (deltas,
   catch-up, empty intervals, partial-interval flush), the coordinator
   views (merged_series / merged_sink), the HTTP exposition server,
   Prometheus HELP/TYPE/escaping, Counters.pp determinism and the
   Sink.merge trace policy. *)

module S = Obs.Sink
module C = Obs.Counters
module H = Obs.Histogram
module T = Obs.Timeseries
module Co = Obs.Collector

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let gauge_points ts name =
  List.map
    (fun p ->
      match p.T.p_v with
      | T.Gauge v -> (p.T.p_t, v)
      | _ -> Alcotest.fail "expected gauge point")
    (T.points ts name)

let counter_points ts name =
  List.map
    (fun p ->
      match p.T.p_v with
      | T.Counter { delta; total } -> (p.T.p_t, delta, total)
      | _ -> Alcotest.fail "expected counter point")
    (T.points ts name)

let hist_counts ts name =
  List.map
    (fun p ->
      match p.T.p_v with
      | T.Hist h -> (p.T.p_t, H.count h)
      | _ -> Alcotest.fail "expected histogram point")
    (T.points ts name)

(* --- Timeseries ring --------------------------------------------------- *)

let test_ring_wrap () =
  let ts = T.create ~capacity:4 () in
  for i = 1 to 6 do
    T.append ts ~name:"g" ~at:(i * 10) (T.Gauge i)
  done;
  check_int "length capped" 4 (T.length ts "g");
  check_int "dropped counted" 2 (T.dropped ts "g");
  Alcotest.(check (list (pair int int)))
    "oldest overwritten, oldest-first order"
    [ (30, 3); (40, 4); (50, 5); (60, 6) ]
    (gauge_points ts "g");
  Alcotest.(check (list (pair int int)))
    "points_since returns the unflushed tail"
    [ (50, 5); (60, 6) ]
    (List.map
       (fun p ->
         match p.T.p_v with T.Gauge v -> (p.T.p_t, v) | _ -> assert false)
       (T.points_since ts "g" ~after:40));
  (match T.last ts "g" with
  | Some { T.p_t = 60; p_v = T.Gauge 6 } -> ()
  | _ -> Alcotest.fail "last point wrong");
  check_int "unknown series is empty" 0 (T.length ts "nope")

let test_merge_aligned () =
  let a = T.create () and b = T.create () in
  T.append a ~name:"c" ~at:10 (T.Counter { delta = 3; total = 3 });
  T.append b ~name:"c" ~at:10 (T.Counter { delta = 4; total = 4 });
  T.append a ~name:"g" ~at:10 (T.Gauge 5);
  T.append b ~name:"g" ~at:10 (T.Gauge 6);
  let ha = H.create () and hb = H.create () in
  H.observe ha 100;
  H.observe hb 200;
  T.append a ~name:"h" ~at:10 (T.Hist ha);
  T.append b ~name:"h" ~at:10 (T.Hist hb);
  let m = T.create () in
  T.merge ~into:m a;
  T.merge ~into:m b;
  Alcotest.(check (list (triple int int int)))
    "counter deltas and totals sum at equal stamps"
    [ (10, 7, 7) ]
    (counter_points m "c");
  Alcotest.(check (list (pair int int))) "gauges sum" [ (10, 11) ]
    (gauge_points m "g");
  (match T.points m "h" with
  | [ { T.p_v = T.Hist h; _ } ] ->
      check_int "interval histograms merge" 2 (H.count h);
      check_int "histogram sum" 300 (H.sum h)
  | _ -> Alcotest.fail "merged histogram point missing")

let test_merge_carry_forward () =
  (* worlds sampling on different boundaries: the merged running total
     must stay cumulative by carrying the other side's last total *)
  let a = T.create () and b = T.create () in
  T.append a ~name:"c" ~at:10 (T.Counter { delta = 5; total = 5 });
  T.append a ~name:"c" ~at:30 (T.Counter { delta = 1; total = 6 });
  T.append b ~name:"c" ~at:20 (T.Counter { delta = 7; total = 7 });
  let m = T.create () in
  T.merge ~into:m a;
  T.merge ~into:m b;
  Alcotest.(check (list (triple int int int)))
    "one-sided stamps carry the other side's total"
    [ (10, 5, 5); (20, 7, 12); (30, 1, 13) ]
    (counter_points m "c")

let test_merge_no_alias () =
  let a = T.create () in
  let h = H.create () in
  H.observe h 1;
  T.append a ~name:"h" ~at:5 (T.Hist h);
  let m = T.create () in
  T.merge ~into:m a;
  H.observe h 2 (* mutate the source after the merge *);
  (match T.points m "h" with
  | [ { T.p_v = T.Hist mh; _ } ] ->
      check_int "merged histogram is a copy, not an alias" 1 (H.count mh)
  | _ -> Alcotest.fail "merged histogram point missing");
  Alcotest.check_raises "self-merge rejected"
    (Invalid_argument "Timeseries.merge: cannot merge a series set into itself")
    (fun () -> T.merge ~into:m m)

(* --- Collector sampling ------------------------------------------------ *)

let test_collector_deltas_and_catchup () =
  let sink = S.create ~label:"co" () in
  let co = Co.create ~every:100 () in
  S.with_sink sink (fun () ->
      let c = C.counter "test.tel.c" in
      C.add c 5;
      Co.tick co ~now:100;
      C.add c 3;
      (* jumping three boundaries at once: the first catch-up boundary
         absorbs the delta, the later one is an explicit zero *)
      Co.tick co ~now:350);
  check_int "boundaries sampled" 3 (Co.samples co);
  Alcotest.(check (list (triple int int int)))
    "deltas, totals and explicit zero points"
    [ (100, 5, 5); (200, 3, 8); (300, 0, 8) ]
    (counter_points (Co.series co) "test.tel.c")

let test_collector_inactive_until_nonzero () =
  let sink = S.create () in
  let co = Co.create ~every:10 () in
  ignore (S.register ~kind:S.Counter "test.tel.idle");
  S.with_sink sink (fun () -> Co.tick co ~now:10);
  check_bool "zero-valued metric stays out of the series" false
    (List.mem "test.tel.idle" (T.names (Co.series co)))

let test_collector_empty_interval_hist () =
  let sink = S.create () in
  let co = Co.create ~every:10 () in
  S.with_sink sink (fun () ->
      let h = H.get_or_create "test.tel.h" in
      H.observe h 42;
      Co.tick co ~now:10;
      (* no observations in the second interval *)
      Co.tick co ~now:20;
      H.observe h 7;
      Co.tick co ~now:30);
  Alcotest.(check (list (pair int int)))
    "empty intervals appear as count-0 histogram points"
    [ (10, 1); (20, 0); (30, 1) ]
    (hist_counts (Co.series co) "test.tel.h")

let test_collector_flush_partial () =
  let sink = S.create () in
  let co = Co.create ~every:100 () in
  S.with_sink sink (fun () ->
      let c = C.counter "test.tel.f" in
      C.add c 4;
      Co.tick co ~now:100;
      C.add c 2;
      Co.flush co ~now:150);
  Alcotest.(check (list (triple int int int)))
    "flush captures the partial tail interval"
    [ (100, 4, 4); (150, 2, 6) ]
    (counter_points (Co.series co) "test.tel.f")

let test_collector_gauge_last_value () =
  let sink = S.create () in
  let co = Co.create ~every:10 () in
  S.with_sink sink (fun () ->
      let g = C.gauge "test.tel.g" in
      C.set g 7;
      Co.tick co ~now:10;
      C.set g 3;
      Co.tick co ~now:20);
  Alcotest.(check (list (pair int int)))
    "gauges sample last value, not deltas"
    [ (10, 7); (20, 3) ]
    (gauge_points (Co.series co) "test.tel.g")

let test_collector_merged_views () =
  let mk add_n obs =
    let sink = S.create () in
    let co = Co.create ~every:10 () in
    S.with_sink sink (fun () ->
        let c = C.counter "test.tel.m" in
        C.add c add_n;
        let h = H.get_or_create "test.tel.mh" in
        H.observe h obs;
        Co.tick co ~now:10);
    co
  in
  let c1 = mk 3 100 and c2 = mk 5 200 in
  let merged = Co.merged_series [ c1; c2 ] in
  Alcotest.(check (list (triple int int int)))
    "merged series sums per-world samples"
    [ (10, 8, 8) ]
    (counter_points merged "test.tel.m");
  let live = Co.merged_sink [ c1; c2 ] in
  check_int "merged live sink holds fleet totals" 8
    (S.counter_value live "test.tel.m");
  (match S.find_histogram live "test.tel.mh" with
  | Some h ->
      check_int "merged live sink replays histogram samples" 2 (H.count h);
      check_int "merged histogram sum" 300 (H.sum h)
  | None -> Alcotest.fail "merged live sink histogram missing")

(* --- HTTP exposition server -------------------------------------------- *)

(* connect, write the raw [request], let the server [poll], then read
   the whole response (Connection: close => read to EOF) *)
let roundtrip srv request =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET
           (Unix.inet_addr_of_string "127.0.0.1", Obs.Serve.port srv));
      ignore (Unix.write_substring fd request 0 (String.length request));
      let served = Obs.Serve.poll srv in
      check_int "poll answered the pending connection" 1 served;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Buffer.contents buf)

let index_of hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then -1
    else if String.sub hay i nl = needle then i
    else go (i + 1)
  in
  go 0

let contains ~needle hay = index_of hay needle >= 0

let test_serve_loopback () =
  let srv =
    Obs.Serve.create ~port:0 (fun path ->
        if path = "/metrics" then Some ("text/plain", "metric_body 1\n")
        else None)
  in
  Fun.protect
    ~finally:(fun () -> Obs.Serve.close srv)
    (fun () ->
      check_bool "ephemeral port bound" true (Obs.Serve.port srv > 0);
      check_int "idle poll serves nothing" 0 (Obs.Serve.poll srv);
      let ok = roundtrip srv "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n" in
      check_bool "200 status" true (contains ~needle:"HTTP/1.1 200" ok);
      check_bool "body served" true (contains ~needle:"metric_body 1" ok);
      check_bool "connection closed" true
        (contains ~needle:"Connection: close" ok);
      let qs = roundtrip srv "GET /metrics?x=1 HTTP/1.1\r\n\r\n" in
      check_bool "query string stripped" true
        (contains ~needle:"HTTP/1.1 200" qs);
      let missing = roundtrip srv "GET /nope HTTP/1.1\r\n\r\n" in
      check_bool "404 for unknown path" true
        (contains ~needle:"HTTP/1.1 404" missing);
      let post = roundtrip srv "POST /metrics HTTP/1.1\r\n\r\n" in
      check_bool "405 for non-GET" true
        (contains ~needle:"HTTP/1.1 405" post);
      let garbage = roundtrip srv "whatever\r\n" in
      check_bool "400 for garbage" true
        (contains ~needle:"HTTP/1.1 400" garbage);
      check_int "every request counted" 5 (Obs.Serve.served srv));
  check_int "poll after close serves nothing" 0 (Obs.Serve.poll srv)

(* --- Prometheus exposition --------------------------------------------- *)

let test_prometheus_help_type () =
  let sink = S.create () in
  S.with_sink sink (fun () ->
      let c = C.counter ~help:"lines\nand \\slashes" "test.exp.helped" in
      C.add c 2;
      let h = H.get_or_create "test.exp.lat" in
      H.observe h 5;
      let out = Obs.Export.prometheus () in
      check_bool "HELP line with escaped newline and backslash" true
        (contains
           ~needle:
             "# HELP palladium_test_exp_helped lines\\nand \\\\slashes"
           out);
      check_bool "TYPE counter" true
        (contains ~needle:"# TYPE palladium_test_exp_helped counter" out);
      check_bool "counter value line" true
        (contains ~needle:"palladium_test_exp_helped 2" out);
      check_bool "derived HELP for histograms" true
        (contains ~needle:"# HELP palladium_test_exp_lat " out);
      check_bool "TYPE histogram" true
        (contains ~needle:"# TYPE palladium_test_exp_lat histogram" out);
      check_bool "+Inf bucket" true
        (contains ~needle:"le=\"+Inf\"" out))

let test_escape_label_value () =
  check_str "backslash, quote and newline escaped"
    "a\\\\b\\\"c\\nd"
    (Obs.Export.escape_label_value "a\\b\"c\nd")

(* --- Counters.pp grouping ---------------------------------------------- *)

let test_counters_pp_deterministic () =
  let sink = S.create () in
  S.with_sink sink (fun () ->
      (* registration order deliberately scrambled across two groups *)
      C.add (C.counter "tppz.second") 1;
      C.add (C.counter "tppa.third") 2;
      C.add (C.counter "tppz.first") 3;
      C.add (C.counter "tppa.other") 4;
      let once = Fmt.str "%a" C.pp () in
      let twice = Fmt.str "%a" C.pp () in
      check_str "pp output stable across calls" once twice;
      let idx needle = index_of once needle in
      let a3 = idx "tppa.third"
      and ao = idx "tppa.other"
      and z1 = idx "tppz.first"
      and z2 = idx "tppz.second" in
      check_bool "all four counters printed" true
        (a3 >= 0 && ao >= 0 && z1 >= 0 && z2 >= 0);
      check_bool "groups sorted (tppa before tppz)" true (a3 < z1 && a3 < z2);
      check_bool "members sorted within a group" true (ao < a3 && z1 < z2))

(* --- Sink.merge trace policy ------------------------------------------- *)

let test_sink_merge_traces_drop () =
  let a = S.create () in
  S.with_sink a (fun () ->
      Obs.Span.set_enabled true;
      Obs.Trace.set_enabled true;
      Obs.Span.begin_ "work" ~at:1;
      Obs.Span.end_ "work" ~at:2;
      Obs.Trace.emit ~cycles:3 (Obs.Trace.Custom "hi"));
  let m = S.create () in
  S.merge ~traces:`Drop ~into:m a;
  check_int "spans still absorbed" 1 (List.length (S.spans m));
  check_int "trace ring dropped" 0 (List.length (S.trace_events m));
  let m2 = S.create () in
  S.merge ~into:m2 a;
  check_int "default policy keeps the last ring" 1
    (List.length (S.trace_events m2))

let () =
  Alcotest.run "telemetry"
    [
      ( "timeseries",
        [
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "merge aligned stamps" `Quick test_merge_aligned;
          Alcotest.test_case "merge carries totals" `Quick
            test_merge_carry_forward;
          Alcotest.test_case "merge copies histograms" `Quick
            test_merge_no_alias;
        ] );
      ( "collector",
        [
          Alcotest.test_case "deltas and catch-up" `Quick
            test_collector_deltas_and_catchup;
          Alcotest.test_case "inactive until nonzero" `Quick
            test_collector_inactive_until_nonzero;
          Alcotest.test_case "empty-interval histograms" `Quick
            test_collector_empty_interval_hist;
          Alcotest.test_case "flush partial interval" `Quick
            test_collector_flush_partial;
          Alcotest.test_case "gauge last value" `Quick
            test_collector_gauge_last_value;
          Alcotest.test_case "merged coordinator views" `Quick
            test_collector_merged_views;
        ] );
      ("serve", [ Alcotest.test_case "loopback" `Quick test_serve_loopback ]);
      ( "export",
        [
          Alcotest.test_case "prometheus help and type" `Quick
            test_prometheus_help_type;
          Alcotest.test_case "label escaping" `Quick test_escape_label_value;
        ] );
      ( "counters",
        [
          Alcotest.test_case "pp deterministic" `Quick
            test_counters_pp_deterministic;
        ] );
      ( "sink",
        [
          Alcotest.test_case "merge trace policy" `Quick
            test_sink_merge_traces_drop;
        ] );
    ]
