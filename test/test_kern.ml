(* Tests for the kernel substrate: address spaces, PPL policy, task
   management, system-call dispatch and fault policy. *)

module P = X86.Privilege

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let s32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let boot_task () =
  let k = Kernel.boot () in
  let task = Kernel.create_task k ~name:"t" in
  (k, task)

(* --- Errno ------------------------------------------------------------ *)

let test_errno_roundtrip () =
  List.iter
    (fun e ->
      match Errno.of_ret (Errno.to_ret e) with
      | Some e' -> check_bool (Errno.to_string e) true (e = e')
      | None -> Alcotest.fail "lost errno")
    [ Errno.EPERM; Errno.EINVAL; Errno.ENOSYS; Errno.EFAULT; Errno.ENOMEM ];
  check_bool "positive is success" true (Errno.of_ret 5 = None)

(* --- Signals ------------------------------------------------------------ *)

let test_signal_delivery () =
  let st = Signal.create_state () in
  let hits = ref 0 in
  Signal.install st Signal.SIGSEGV (fun info ->
      incr hits;
      check_bool "addr present" true (info.Signal.fault_addr = Some 0x1234));
  let info =
    { Signal.signal = Signal.SIGSEGV; fault_addr = Some 0x1234; reason = "t" }
  in
  check_bool "handled" true (Signal.deliver st info);
  check_int "handler ran" 1 !hits;
  check_int "recorded" 1 (List.length (Signal.delivered st));
  Signal.uninstall st Signal.SIGSEGV;
  check_bool "unhandled after uninstall" false (Signal.deliver st info)

(* --- Vm_area ------------------------------------------------------------ *)

let test_vm_area_basics () =
  let a =
    Vm_area.create ~va_start:0x1000 ~va_end:0x3000 ~perms:Vm_area.rw ~ppl:P.User
      Vm_area.Data
  in
  check_bool "contains start" true (Vm_area.contains a 0x1000);
  check_bool "excludes end" false (Vm_area.contains a 0x3000);
  check_int "pages" 2 (Vm_area.pages a);
  check_bool "overlap" true (Vm_area.overlaps a ~va_start:0x2000 ~va_end:0x4000);
  check_bool "no overlap" false
    (Vm_area.overlaps a ~va_start:0x3000 ~va_end:0x4000);
  check_bool "write allowed" true (Vm_area.allows a X86.Fault.Write);
  check_bool "exec denied" false (Vm_area.allows a X86.Fault.Execute)

let test_vm_area_validation () =
  Alcotest.check_raises "unaligned" (Invalid_argument "Vm_area: unaligned start")
    (fun () ->
      ignore
        (Vm_area.create ~va_start:0x1001 ~va_end:0x3000 ~perms:Vm_area.rw
           ~ppl:P.User Vm_area.Data))

(* --- Address space ------------------------------------------------------- *)

let test_asp_mmap_find_free () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let a = Address_space.mmap asp ~len:8192 ~perms:Vm_area.rw Vm_area.Mmap_anon in
  let b = Address_space.mmap asp ~len:8192 ~perms:Vm_area.rw Vm_area.Mmap_anon in
  check_bool "distinct" true
    (not (Vm_area.overlaps a ~va_start:b.Vm_area.va_start ~va_end:b.Vm_area.va_end));
  check_bool "found" true (Address_space.find_area asp a.Vm_area.va_start = Some a)

let test_asp_overlap_rejected () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  ignore
    (Address_space.map_area asp ~va_start:0x10000 ~len:8192 ~perms:Vm_area.rw
       Vm_area.Data);
  match
    Address_space.map_area asp ~va_start:0x11000 ~len:8192 ~perms:Vm_area.rw
      Vm_area.Data
  with
  | _ -> Alcotest.fail "overlap accepted"
  | exception Address_space.Overlap -> ()

let test_asp_demand_paging () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let a = Address_space.mmap asp ~len:4096 ~perms:Vm_area.ro Vm_area.Data in
  check_bool "demand read ok" true
    (Address_space.demand_map asp ~addr:a.Vm_area.va_start ~access:X86.Fault.Read);
  check_bool "write to ro area denied" false
    (Address_space.demand_map asp ~addr:a.Vm_area.va_start ~access:X86.Fault.Write);
  check_bool "outside any area" false
    (Address_space.demand_map asp ~addr:0x7FFF000 ~access:X86.Fault.Read)

let test_asp_promotion_policy () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let rw = Address_space.mmap asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data in
  let ro = Address_space.mmap asp ~len:4096 ~perms:Vm_area.ro Vm_area.Data in
  let ext = Address_space.mmap asp ~len:4096 ~perms:Vm_area.rw Vm_area.Ext_data in
  List.iter (Address_space.populate asp) [ rw; ro; ext ];
  ignore (Address_space.promote asp);
  check_bool "writable app data hidden" true (rw.Vm_area.ppl = P.Supervisor);
  check_bool "read-only stays user" true (ro.Vm_area.ppl = P.User);
  check_bool "extension data stays user" true (ext.Vm_area.ppl = P.User);
  let late = Address_space.mmap asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data in
  check_bool "late writable is supervisor" true (late.Vm_area.ppl = P.Supervisor)

let test_asp_set_range () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let a = Address_space.mmap asp ~len:(3 * 4096) ~perms:Vm_area.rw Vm_area.Data in
  Address_space.populate asp a;
  ignore (Address_space.promote asp);
  (match
     Address_space.set_range asp ~addr:a.Vm_area.va_start ~len:(3 * 4096) P.User
   with
  | Ok touched -> check_int "3 PTEs marked" 3 touched
  | Error _ -> Alcotest.fail "set_range failed");
  (match Address_space.set_range asp ~addr:0x7000000 ~len:4096 P.User with
  | Error Errno.EINVAL -> ()
  | _ -> Alcotest.fail "expected EINVAL");
  check_bool "ppl flipped" true (a.Vm_area.ppl = P.User)

let test_asp_clone_inherits () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let a = Address_space.mmap asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data in
  Address_space.populate asp a;
  ignore (Address_space.promote asp);
  let c = Address_space.clone asp in
  check_bool "promotion inherited" true (Address_space.is_promoted c);
  check_int "areas copied"
    (List.length (Address_space.areas asp))
    (List.length (Address_space.areas c))

let test_asp_poke_peek () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let a = Address_space.mmap asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data in
  Address_space.poke_string asp a.Vm_area.va_start "hello";
  check_bool "peek" true
    (Bytes.to_string (Address_space.peek_bytes asp a.Vm_area.va_start 5) = "hello");
  Address_space.poke_u32 asp (a.Vm_area.va_start + 100) 0xFEED;
  check_int "u32" 0xFEED (Address_space.peek_u32 asp (a.Vm_area.va_start + 100))

(* --- Tasks: fork and exec ----------------------------------------------- *)

let test_fork_inherits_exec_resets () =
  let k = Kernel.boot () in
  let app = User_ext.create k ~name:"parent" in
  let parent = User_ext.task app in
  check_bool "parent promoted" true (Task.is_promoted parent);
  let child = Kernel.fork_task k parent in
  check_bool "child promoted (fork inherits SPL)" true (Task.is_promoted child);
  check_bool "child inherits app segments" true (child.Task.app_cs <> None);
  check_bool "child has parent" true (child.Task.parent = Some parent.Task.pid);
  Kernel.exec_task k child;
  check_bool "exec resets to SPL3" false (Task.is_promoted child);
  check_bool "exec clears segments" true (child.Task.app_cs = None)

(* --- Syscall dispatch ----------------------------------------------------- *)

let test_syscall_dispatch_policy () =
  let k, task = boot_task () in
  let cpu = Kernel.cpu k in
  let table = Syscall.create_table () in
  Syscall.register table ~number:7 ~name:"seven" (fun _ -> 7);
  let ctx caller_spl =
    { Syscall.task; cpu; caller_spl; arg1 = 0; arg2 = 0; arg3 = 0 }
  in
  check_int "plain dispatch" 7 (Syscall.dispatch table (ctx P.R3) 7);
  check_int "enosys" (Errno.to_ret Errno.ENOSYS)
    (Syscall.dispatch table (ctx P.R3) 99);
  task.Task.task_spl <- P.R2;
  check_int "extension rejected" (Errno.to_ret Errno.EPERM)
    (Syscall.dispatch table (ctx P.R3) 7);
  check_int "application allowed" 7 (Syscall.dispatch table (ctx P.R2) 7)

let test_user_syscalls_end_to_end () =
  let k, task = boot_task () in
  let rt = Runtime.install k task in
  check_int "getpid" task.Task.pid (Runtime.syscall rt ~number:Syscall.sys_getpid);
  let addr = Runtime.syscall rt ~number:Syscall.sys_mmap ~a1:8192 ~a2:3 in
  check_bool "mmap gives user address" true (X86.Layout.is_user_address addr);
  check_int "munmap" 0
    (Runtime.syscall rt ~number:Syscall.sys_munmap ~a1:addr ~a2:8192);
  check_int "bad mmap" (Errno.to_ret Errno.EINVAL)
    (s32 (Runtime.syscall rt ~number:Syscall.sys_mmap ~a1:0 ~a2:3))

let test_write_syscall_console () =
  let k, task = boot_task () in
  let rt = Runtime.install k task in
  let a1 = Runtime.syscall rt ~number:Syscall.sys_mmap ~a1:4096 ~a2:3 in
  Address_space.poke_string task.Task.asp a1 "hi there";
  let n = Runtime.syscall rt ~number:Syscall.sys_write ~a1 ~a2:8 in
  check_int "bytes written" 8 n;
  check_bool "console content" true (Kernel.console_contents k = "hi there")

let test_exit_syscall () =
  let k, task = boot_task () in
  let rt = Runtime.install k task in
  ignore (Runtime.syscall rt ~number:Syscall.sys_exit ~a1:3);
  check_bool "exit code" true (task.Task.exit_code = Some 3)

(* --- Watchdog --------------------------------------------------------------- *)

let test_watchdog_expiry () =
  let wd = Watchdog.create ~tick_instrs:4 () in
  Watchdog.arm wd ~now:0 ~limit:100 ();
  check_bool "armed" true (Watchdog.is_armed wd);
  for now = 1 to 8 do
    Watchdog.check wd ~now
  done;
  match
    for _ = 1 to 8 do
      Watchdog.check wd ~now:500
    done
  with
  | () -> Alcotest.fail "expected expiry"
  | exception Watchdog.Expired e ->
      check_int "limit" 100 e.Watchdog.wd_limit;
      check_bool "disarmed after expiry" false (Watchdog.is_armed wd);
      check_int "counted" 1 (Watchdog.expirations wd)

(* --- Page fault policy -------------------------------------------------------- *)

let test_fault_policy_decisions () =
  let _k, task = boot_task () in
  let asp = task.Task.asp in
  let a = Address_space.mmap asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data in
  (match
     Page_fault.decide ~cpl:P.R3 ~task
       (X86.Fault.Page_not_present
          { linear = a.Vm_area.va_start; access = X86.Fault.Write })
   with
  | Page_fault.Repaired -> ()
  | _ -> Alcotest.fail "expected repair");
  (match
     Page_fault.decide ~cpl:P.R3 ~task
       (X86.Fault.Page_privilege
          { linear = 0x1234; access = X86.Fault.Write; cpl = P.R3 })
   with
  | Page_fault.Deliver_segv _ -> ()
  | _ -> Alcotest.fail "expected segv");
  (match
     Page_fault.decide ~cpl:P.R1 ~task
       (X86.Fault.Limit_violation
          {
            selector = X86.Selector.make ~rpl:P.R1 5;
            offset = 0;
            limit = 0;
            access = X86.Fault.Read;
          })
   with
  | Page_fault.Kernel_ext_fault _ -> ()
  | _ -> Alcotest.fail "expected kernel-ext fault");
  match
    Page_fault.decide ~cpl:P.R0 ~task
      (X86.Fault.Page_not_present
         { linear = X86.Layout.kernel_base + 0x100; access = X86.Fault.Read })
  with
  | Page_fault.Panic _ -> ()
  | _ -> Alcotest.fail "expected panic"

(* --- Kernel memory ------------------------------------------------------------ *)

let test_kalloc_shared_across_tasks () =
  let k, t1 = boot_task () in
  let addr = Kernel.kalloc k ~bytes:4096 in
  let t2 = Kernel.create_task k ~name:"t2" in
  Kernel.kpoke_u32 k addr 0x77;
  check_int "visible via kernel" 0x77 (Kernel.kpeek_u32 k addr);
  let vpn = addr / 4096 in
  let mapped task =
    X86.Paging.lookup (Address_space.directory task.Task.asp) ~vpn <> None
  in
  check_bool "t1 sees kernel page" true (mapped t1);
  check_bool "t2 sees kernel page" true (mapped t2)

let () =
  Alcotest.run "kern"
    [
      ("errno", [ Alcotest.test_case "roundtrip" `Quick test_errno_roundtrip ]);
      ("signal", [ Alcotest.test_case "delivery" `Quick test_signal_delivery ]);
      ( "vm-area",
        [
          Alcotest.test_case "basics" `Quick test_vm_area_basics;
          Alcotest.test_case "validation" `Quick test_vm_area_validation;
        ] );
      ( "address-space",
        [
          Alcotest.test_case "mmap/find-free" `Quick test_asp_mmap_find_free;
          Alcotest.test_case "overlap rejected" `Quick test_asp_overlap_rejected;
          Alcotest.test_case "demand paging" `Quick test_asp_demand_paging;
          Alcotest.test_case "promotion PPL policy" `Quick test_asp_promotion_policy;
          Alcotest.test_case "set_range" `Quick test_asp_set_range;
          Alcotest.test_case "clone inherits" `Quick test_asp_clone_inherits;
          Alcotest.test_case "poke/peek" `Quick test_asp_poke_peek;
        ] );
      ( "tasks",
        [
          Alcotest.test_case "fork inherits, exec resets" `Quick
            test_fork_inherits_exec_resets;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "dispatch policy (taskSPL)" `Quick
            test_syscall_dispatch_policy;
          Alcotest.test_case "end-to-end via int 0x80" `Quick
            test_user_syscalls_end_to_end;
          Alcotest.test_case "write to console" `Quick test_write_syscall_console;
          Alcotest.test_case "exit" `Quick test_exit_syscall;
        ] );
      ( "watchdog",
        [ Alcotest.test_case "expiry at tick" `Quick test_watchdog_expiry ] );
      ( "fault-policy",
        [ Alcotest.test_case "decisions" `Quick test_fault_policy_decisions ] );
      ( "kernel-memory",
        [
          Alcotest.test_case "kalloc shared across tasks" `Quick
            test_kalloc_shared_across_tasks;
        ] );
    ]
