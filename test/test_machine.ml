(* Tests for the CPU simulator: instruction semantics, cycle
   accounting, and the far control transfers Palladium depends on. *)

module P = X86.Privilege
module Sel = X86.Selector
module Desc = X86.Descriptor
module DT = X86.Desc_table
module PM = X86.Phys_mem
module Pg = X86.Paging
module Seg = X86.Segmentation
module F = X86.Fault

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* A flat little machine: 32 identity-ish mapped pages, kernel and
   user segments over the whole range, ring-0 stack in the TSS. *)
type world = {
  cpu : Cpu.t;
  gdt : DT.t;
  idt : DT.t;
  view : DT.view;
  kcs : Sel.t;
  kds : Sel.t;
  ucs : Sel.t;
  uds : Sel.t;
}

let make_world () =
  let phys = PM.create () in
  let dir = Pg.create () in
  for vpn = 0 to 31 do
    let pfn = PM.alloc_frame phys in
    Pg.map dir ~vpn ~pfn ~writable:true ~user:true
  done;
  let gdt = DT.gdt () in
  let lim = 0x1F_FFFF in
  DT.set gdt 1 (Desc.code ~base:0 ~limit:lim ~dpl:P.R0 ());
  DT.set gdt 2 (Desc.data ~base:0 ~limit:lim ~dpl:P.R0 ());
  DT.set gdt 3 (Desc.code ~base:0 ~limit:lim ~dpl:P.R3 ());
  DT.set gdt 4 (Desc.data ~base:0 ~limit:lim ~dpl:P.R3 ());
  let kcs = Sel.make ~rpl:P.R0 1 in
  let kds = Sel.make ~rpl:P.R0 2 in
  let ucs = Sel.make ~rpl:P.R3 3 in
  let uds = Sel.make ~rpl:P.R3 4 in
  let idt = DT.create ~capacity:64 ~name:"idt" ~is_gdt:false () in
  let tss = Tss.create ~dir () in
  Tss.set_stack tss P.R0 { Tss.stack_selector = kds; stack_pointer = 0x8000 };
  let mmu = X86.Mmu.create phys ~dir in
  let code = Code_mem.create () in
  let view = DT.view gdt in
  let cpu = Cpu.create ~mmu ~code ~view ~idt ~tss () in
  { cpu; gdt; idt; view; kcs; kds; ucs; uds }

let enter_kernel_mode w ~eip ~esp =
  Cpu.force_seg w.cpu Reg.CS (Seg.load_code w.view ~new_cpl:P.R0 w.kcs);
  Cpu.force_seg w.cpu Reg.SS (Seg.load_stack w.view ~cpl:P.R0 w.kds);
  Cpu.force_seg w.cpu Reg.DS (Seg.load_data w.view ~cpl:P.R0 w.kds);
  Cpu.force_seg w.cpu Reg.ES (Seg.load_data w.view ~cpl:P.R0 w.kds);
  Cpu.set_eip w.cpu eip;
  Cpu.set_reg w.cpu Reg.ESP esp;
  Cpu.set_halted w.cpu false

let enter_user_mode w ~eip ~esp =
  Cpu.force_seg w.cpu Reg.CS (Seg.load_code w.view ~new_cpl:P.R3 w.ucs);
  Cpu.force_seg w.cpu Reg.SS (Seg.load_stack w.view ~cpl:P.R3 w.uds);
  Cpu.force_seg w.cpu Reg.DS (Seg.load_data w.view ~cpl:P.R3 w.uds);
  Cpu.force_seg w.cpu Reg.ES (Seg.load_data w.view ~cpl:P.R3 w.uds);
  Cpu.set_eip w.cpu eip;
  Cpu.set_reg w.cpu Reg.ESP esp;
  Cpu.set_halted w.cpu false

let load_at w ~org prog =
  let asm = Asm.assemble ~org prog in
  Code_mem.store_program (Cpu.code w.cpu) ~addr:org asm.Asm.instrs;
  asm

(* Run a kernel-mode program and return the CPU. *)
let run_prog ?(esp = 0x8000) prog =
  let w = make_world () in
  ignore (load_at w ~org:0x1000 prog);
  enter_kernel_mode w ~eip:0x1000 ~esp;
  match Cpu.run w.cpu with
  | Cpu.Halted -> w
  | Cpu.Max_instructions -> Alcotest.fail "program ran away"
  | Cpu.Fault_abort f -> Alcotest.failf "program faulted: %a" F.pp f

let i x = Asm.I x

let reg r = Operand.Reg r

let imm v = Operand.Imm v

(* --- Basic instruction semantics ------------------------------------- *)

let test_mov_alu () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.EAX, imm 40));
        i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 2));
        i (Instr.Mov (reg Reg.EBX, reg Reg.EAX));
        i (Instr.Alu (Instr.Sub, reg Reg.EBX, imm 12));
        i (Instr.Alu (Instr.And, reg Reg.EBX, imm 0xFF));
        i (Instr.Alu (Instr.Or, reg Reg.EBX, imm 0x100));
        i (Instr.Alu (Instr.Xor, reg Reg.EBX, imm 0x0F0));
        i Instr.Hlt;
      ]
  in
  check_int "eax" 42 (Cpu.get_reg w.cpu Reg.EAX);
  check_int "ebx" ((30 lor 0x100) lxor 0xF0) (Cpu.get_reg w.cpu Reg.EBX)

let test_wraparound () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.EAX, imm 0xFFFF_FFFF));
        i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 2));
        i Instr.Hlt;
      ]
  in
  check_int "32-bit wrap" 1 (Cpu.get_reg w.cpu Reg.EAX)

let test_memory_roundtrip () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.EAX, imm 0x1234_5678));
        i (Instr.Mov (Operand.absolute 0x5000, reg Reg.EAX));
        i (Instr.Mov (reg Reg.EBX, Operand.absolute 0x5000));
        i (Instr.Mov (reg Reg.ECX, imm 0x5000));
        i (Instr.Mov (reg Reg.EDX, Operand.deref Reg.ECX));
        i Instr.Hlt;
      ]
  in
  check_int "absolute" 0x1234_5678 (Cpu.get_reg w.cpu Reg.EBX);
  check_int "indirect" 0x1234_5678 (Cpu.get_reg w.cpu Reg.EDX)

let test_indexed_addressing () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.EBX, imm 0x5000));
        i (Instr.Mov (reg Reg.ECX, imm 3));
        i (Instr.Mov (reg Reg.EAX, imm 77));
        i
          (Instr.Mov
             (Operand.mem ~base:Reg.EBX ~index:(Reg.ECX, 4) ~disp:8 (), reg Reg.EAX));
        i (Instr.Mov (reg Reg.EDX, Operand.absolute (0x5000 + 12 + 8)));
        i Instr.Hlt;
      ]
  in
  check_int "base+index*scale+disp" 77 (Cpu.get_reg w.cpu Reg.EDX)

let test_movb_zero_extends () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.EAX, imm 0xFFFF_FFFF));
        i (Instr.Mov (Operand.absolute 0x5000, imm 0x42));
        i (Instr.Movb (reg Reg.EAX, Operand.absolute 0x5000));
        i Instr.Hlt;
      ]
  in
  check_int "zero extended" 0x42 (Cpu.get_reg w.cpu Reg.EAX)

let test_push_pop () =
  let w =
    run_prog
      [
        i (Instr.Push (imm 0xAA));
        i (Instr.Push (imm 0xBB));
        i (Instr.Pop (reg Reg.EAX));
        i (Instr.Pop (reg Reg.EBX));
        i Instr.Hlt;
      ]
  in
  check_int "lifo a" 0xBB (Cpu.get_reg w.cpu Reg.EAX);
  check_int "lifo b" 0xAA (Cpu.get_reg w.cpu Reg.EBX);
  check_int "esp restored" 0x8000 (Cpu.get_reg w.cpu Reg.ESP)

let test_xchg () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.EAX, imm 1));
        i (Instr.Mov (reg Reg.EBX, imm 2));
        i (Instr.Xchg (reg Reg.EAX, reg Reg.EBX));
        i Instr.Hlt;
      ]
  in
  check_int "eax" 2 (Cpu.get_reg w.cpu Reg.EAX);
  check_int "ebx" 1 (Cpu.get_reg w.cpu Reg.EBX)

let test_conditions () =
  (* For several (a, b) pairs, take each branch and record a bitmask
     of conditions that held. *)
  let conds =
    [
      (Instr.Eq, 1); (Instr.Ne, 2); (Instr.Lt, 4); (Instr.Ge, 8);
      (Instr.Below, 16); (Instr.Above_eq, 32); (Instr.Le, 64); (Instr.Gt, 128);
    ]
  in
  let mask_for a b =
    let prog =
      [ i (Instr.Mov (reg Reg.EDI, imm 0)) ]
      @ List.concat_map
          (fun (c, bit) ->
            let lbl = Printf.sprintf "c%d" bit in
            [
              i (Instr.Mov (reg Reg.EAX, imm a));
              i (Instr.Cmp (reg Reg.EAX, imm b));
              i (Instr.Jcc (c, Instr.Label lbl));
              i (Instr.Jmp (Instr.Label (lbl ^ "e")));
              Asm.L lbl;
              i (Instr.Alu (Instr.Or, reg Reg.EDI, imm bit));
              Asm.L (lbl ^ "e");
            ])
          conds
      @ [ i Instr.Hlt ]
    in
    let w = run_prog prog in
    Cpu.get_reg w.cpu Reg.EDI
  in
  (* 5 vs 5: eq, ge, ae, le *)
  check_int "5 cmp 5" (1 lor 8 lor 32 lor 64) (mask_for 5 5);
  (* 3 vs 7: ne, lt, below, le *)
  check_int "3 cmp 7" (2 lor 4 lor 16 lor 64) (mask_for 3 7);
  (* -1 (unsigned max) vs 1: ne, signed lt is false (-1 < 1 true!) ...
     0xFFFFFFFF as signed is -1 so lt holds; unsigned it is above. *)
  check_int "-1 cmp 1" (2 lor 4 lor 32 lor 64) (mask_for 0xFFFF_FFFF 1)

let test_call_ret () =
  let w =
    run_prog
      [
        i (Instr.Call (Instr.Label "f"));
        i (Instr.Mov (reg Reg.EBX, imm 9));
        i Instr.Hlt;
        Asm.L "f";
        i (Instr.Mov (reg Reg.EAX, imm 7));
        i Instr.Ret;
      ]
  in
  check_int "callee ran" 7 (Cpu.get_reg w.cpu Reg.EAX);
  check_int "fell back to caller" 9 (Cpu.get_reg w.cpu Reg.EBX)

let test_loop_countdown () =
  let w =
    run_prog
      [
        i (Instr.Mov (reg Reg.ECX, imm 10));
        i (Instr.Mov (reg Reg.EAX, imm 0));
        Asm.L "top";
        i (Instr.Cmp (reg Reg.ECX, imm 0));
        i (Instr.Jcc (Instr.Eq, Instr.Label "done"));
        i (Instr.Alu (Instr.Add, reg Reg.EAX, reg Reg.ECX));
        i (Instr.Dec (reg Reg.ECX));
        i (Instr.Jmp (Instr.Label "top"));
        Asm.L "done";
        i Instr.Hlt;
      ]
  in
  check_int "sum 1..10" 55 (Cpu.get_reg w.cpu Reg.EAX)

let test_cycle_accounting () =
  let p = Cycles.pentium in
  let fetch_walk = p.Cycles.tlb_walk * Pg.walk_length in
  (* one cold TLB walk for the code page, then 1 cycle per nop/hlt *)
  let w = run_prog [ i Instr.Nop; i Instr.Nop; i Instr.Hlt ] in
  check_int "2 nops + hlt" (fetch_walk + 3) (Cpu.cycles w.cpu);
  let w2 =
    run_prog [ i (Instr.Mov (reg Reg.EAX, Operand.absolute 0x5000)); i Instr.Hlt ]
  in
  (* code walk + mov + read extra + data-page walk + hlt *)
  check_int "mem read cost incl walks"
    (fetch_walk + p.Cycles.mov + p.Cycles.mem_read_extra + fetch_walk
   + p.Cycles.hlt)
    (Cpu.cycles w2.cpu)

let test_marks () =
  let w =
    run_prog
      [ i (Instr.Mark "a"); i Instr.Nop; i (Instr.Mark "b"); i Instr.Hlt ]
  in
  match Cpu.marks w.cpu with
  | [ ("a", ca); ("b", cb) ] -> check_int "nop between marks" 1 (cb - ca)
  | _ -> Alcotest.fail "expected two marks"

(* --- Faults ------------------------------------------------------------ *)

let test_fetch_unmapped_faults () =
  let w = make_world () in
  (* within the segment limit but on an unmapped page *)
  enter_kernel_mode w ~eip:0x30000 ~esp:0x8000;
  (match Cpu.run w.cpu with
  | Cpu.Fault_abort f -> check_bool "page fault" true (F.is_page_fault f)
  | _ -> Alcotest.fail "expected page fault");
  (* beyond the code segment limit: the segment check fires first *)
  enter_kernel_mode w ~eip:0x40_0000 ~esp:0x8000;
  match Cpu.run w.cpu with
  | Cpu.Fault_abort (F.Limit_violation _) -> ()
  | _ -> Alcotest.fail "expected limit violation"

let test_user_cannot_touch_supervisor_page () =
  let w = make_world () in
  (* make page 20 supervisor *)
  ignore (Pg.set_user (X86.Mmu.directory (Cpu.mmu w.cpu)) ~vpn:20 false);
  X86.Mmu.flush_tlb (Cpu.mmu w.cpu);
  ignore
    (load_at w ~org:0x1000
       [ i (Instr.Mov (reg Reg.EAX, Operand.absolute (20 * 4096))); i Instr.Hlt ]);
  enter_user_mode w ~eip:0x1000 ~esp:0x7000;
  (match Cpu.run w.cpu with
  | Cpu.Fault_abort (F.Page_privilege _) -> ()
  | _ -> Alcotest.fail "expected page-privilege fault");
  (* same access from ring 0 succeeds *)
  enter_kernel_mode w ~eip:0x1000 ~esp:0x8000;
  match Cpu.run w.cpu with
  | Cpu.Halted -> ()
  | _ -> Alcotest.fail "supervisor access should succeed"

let test_kcall_handler () =
  let w = make_world () in
  Cpu.register_handler w.cpu "probe" (fun cpu -> Cpu.set_reg cpu Reg.EDX 99);
  ignore (load_at w ~org:0x1000 [ i (Instr.Kcall "probe"); i Instr.Hlt ]);
  enter_kernel_mode w ~eip:0x1000 ~esp:0x8000;
  (match Cpu.run w.cpu with Cpu.Halted -> () | _ -> Alcotest.fail "run failed");
  check_int "handler ran" 99 (Cpu.get_reg w.cpu Reg.EDX)

(* --- Far control transfers --------------------------------------------- *)

(* User code calls through a gate into ring 0, the handler returns
   with lret; verifies CPL changes and the stack switch. *)
let test_gate_privilege_raise_and_return () =
  let w = make_world () in
  ignore
    (load_at w ~org:0x2000
       [
         (* inside ring 0: note the switched stack, mark, return *)
         i (Instr.Mov (reg Reg.EDX, reg Reg.ESP));
         i Instr.Lret;
       ]);
  let gate = Desc.call_gate ~dpl:P.R3 ~target:w.kcs ~entry:0x2000 () in
  let gate_idx = DT.alloc w.gdt gate in
  let gate_sel = Sel.encode (Sel.make ~rpl:P.R3 gate_idx) in
  ignore
    (load_at w ~org:0x1000
       [
         i (Instr.Lcall gate_sel);
         i (Instr.Mov (reg Reg.EBX, imm 5));
         i Instr.Hlt;
       ]);
  enter_user_mode w ~eip:0x1000 ~esp:0x7000;
  (match Cpu.run w.cpu with
  | Cpu.Halted -> ()
  | Cpu.Fault_abort f -> Alcotest.failf "faulted: %a" F.pp f
  | _ -> Alcotest.fail "did not halt");
  check_int "continued after return" 5 (Cpu.get_reg w.cpu Reg.EBX);
  check_int "back at CPL3" 3 (P.to_int (Cpu.cpl w.cpu));
  (* the ring-0 stack pointer observed inside the gate is below the
     TSS SP0 (frame pushed) *)
  let sp_inside = Cpu.get_reg w.cpu Reg.EDX in
  check_bool "switched to TSS stack" true
    (sp_inside < 0x8000 && sp_inside >= 0x8000 - 32);
  check_int "user esp restored" 0x7000 (Cpu.get_reg w.cpu Reg.ESP)

let test_gate_dpl_blocks_user () =
  let w = make_world () in
  ignore (load_at w ~org:0x2000 [ i Instr.Lret ]);
  let gate = Desc.call_gate ~dpl:P.R0 ~target:w.kcs ~entry:0x2000 () in
  let gate_idx = DT.alloc w.gdt gate in
  let gate_sel = Sel.encode (Sel.make ~rpl:P.R3 gate_idx) in
  ignore (load_at w ~org:0x1000 [ i (Instr.Lcall gate_sel); i Instr.Hlt ]);
  enter_user_mode w ~eip:0x1000 ~esp:0x7000;
  match Cpu.run w.cpu with
  | Cpu.Fault_abort (F.Gate_privilege _) -> ()
  | _ -> Alcotest.fail "expected gate-privilege fault"

(* The Palladium trick: ring 0 synthesises a frame and lrets into
   ring-3 code, which comes back via a call gate. *)
let test_lret_descends_privilege () =
  let w = make_world () in
  (* ring-3 target: set EAX and halt (halting at CPL3 is fine here;
     no confinement in this toy world) *)
  ignore
    (load_at w ~org:0x3000
       [ i (Instr.Mov (reg Reg.EAX, imm 0x33)); i Instr.Hlt ]);
  let ucs3 = Sel.encode w.ucs in
  let uds3 = Sel.encode w.uds in
  ignore
    (load_at w ~org:0x1000
       [
         i (Instr.Push (imm uds3)); (* SS *)
         i (Instr.Push (imm 0x7000)); (* ESP *)
         i (Instr.Push (imm ucs3)); (* CS *)
         i (Instr.Push (imm 0x3000)); (* EIP *)
         i Instr.Lret;
       ]);
  enter_kernel_mode w ~eip:0x1000 ~esp:0x8000;
  (match Cpu.run w.cpu with
  | Cpu.Halted -> ()
  | Cpu.Fault_abort f -> Alcotest.failf "faulted: %a" F.pp f
  | _ -> Alcotest.fail "did not halt");
  check_int "ring-3 code ran" 0x33 (Cpu.get_reg w.cpu Reg.EAX);
  check_int "CPL lowered" 3 (P.to_int (Cpu.cpl w.cpu));
  check_int "stack switched" 0x7000 (Cpu.get_reg w.cpu Reg.ESP)

let test_lret_to_more_privileged_faults () =
  let w = make_world () in
  let kcs0 = Sel.encode w.kcs in
  ignore
    (load_at w ~org:0x1000
       [ i (Instr.Push (imm kcs0)); i (Instr.Push (imm 0x2000)); i Instr.Lret ]);
  enter_user_mode w ~eip:0x1000 ~esp:0x7000;
  match Cpu.run w.cpu with
  | Cpu.Fault_abort (F.Invalid_transfer _) -> ()
  | _ -> Alcotest.fail "expected invalid-transfer fault"

let test_lret_invalidates_privileged_ds () =
  let w = make_world () in
  (* ring-3 code immediately reads through DS, which the hardware
     nulled on the way down (it held a DPL0 segment). *)
  ignore
    (load_at w ~org:0x3000
       [ i (Instr.Mov (reg Reg.EAX, Operand.absolute 0x5000)); i Instr.Hlt ]);
  ignore
    (load_at w ~org:0x1000
       [
         i (Instr.Push (imm (Sel.encode w.uds)));
         i (Instr.Push (imm 0x7000));
         i (Instr.Push (imm (Sel.encode w.ucs)));
         i (Instr.Push (imm 0x3000));
         i Instr.Lret;
       ]);
  enter_kernel_mode w ~eip:0x1000 ~esp:0x8000;
  match Cpu.run w.cpu with
  | Cpu.Fault_abort F.Null_selector -> ()
  | Cpu.Halted -> Alcotest.fail "DS should have been invalidated"
  | r ->
      ignore r;
      Alcotest.fail "unexpected outcome"

let test_int_iret_roundtrip () =
  let w = make_world () in
  Cpu.register_handler w.cpu "svc" (fun cpu ->
      Cpu.set_reg cpu Reg.EDX (Cpu.get_reg cpu Reg.EAX * 2));
  ignore (load_at w ~org:0x2000 [ i (Instr.Kcall "svc"); i Instr.Iret ]);
  DT.set w.idt 0x40 (Desc.interrupt_gate ~dpl:P.R3 ~target:w.kcs ~entry:0x2000 ());
  ignore
    (load_at w ~org:0x1000
       [
         i (Instr.Mov (reg Reg.EAX, imm 21));
         i (Instr.Int_ 0x40);
         i (Instr.Mov (reg Reg.EBX, reg Reg.EDX));
         i Instr.Hlt;
       ]);
  enter_user_mode w ~eip:0x1000 ~esp:0x7000;
  (match Cpu.run w.cpu with
  | Cpu.Halted -> ()
  | Cpu.Fault_abort f -> Alcotest.failf "faulted: %a" F.pp f
  | _ -> Alcotest.fail "did not halt");
  check_int "service result" 42 (Cpu.get_reg w.cpu Reg.EBX);
  check_int "back at CPL3" 3 (P.to_int (Cpu.cpl w.cpu))

let test_int_missing_vector () =
  let w = make_world () in
  ignore (load_at w ~org:0x1000 [ i (Instr.Int_ 0x41); i Instr.Hlt ]);
  enter_user_mode w ~eip:0x1000 ~esp:0x7000;
  match Cpu.run w.cpu with
  | Cpu.Fault_abort (F.Descriptor_missing _) -> ()
  | _ -> Alcotest.fail "expected missing-descriptor fault"

let test_save_restore_state () =
  let w = make_world () in
  ignore (load_at w ~org:0x1000 [ i (Instr.Mov (reg Reg.EAX, imm 1)); i Instr.Hlt ]);
  enter_kernel_mode w ~eip:0x1000 ~esp:0x8000;
  Cpu.set_reg w.cpu Reg.EAX 1234;
  let saved = Cpu.save_state w.cpu in
  ignore (Cpu.run w.cpu);
  check_int "ran" 1 (Cpu.get_reg w.cpu Reg.EAX);
  Cpu.restore_state w.cpu saved;
  check_int "restored eax" 1234 (Cpu.get_reg w.cpu Reg.EAX);
  check_int "restored eip" 0x1000 (Cpu.eip w.cpu)

(* --- Debugging aids ------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_debug_explain_and_trace () =
  let w = make_world () in
  Cpu.set_tracing w.cpu true;
  ignore
    (load_at w ~org:0x1000
       [ i (Instr.Mov (reg Reg.EAX, imm 1)); i Instr.Nop; i Instr.Hlt ]);
  enter_kernel_mode w ~eip:0x1000 ~esp:0x8000;
  ignore (Cpu.run w.cpu);
  let listing = Debug.trace_listing w.cpu in
  check_bool "trace shows the mov" true (contains ~sub:"mov" listing);
  (* fault explanation names the right boundary *)
  let msg =
    Debug.explain_fault ~cpl:P.R3
      (F.Page_privilege { linear = 0x1234; access = F.Write; cpl = P.R3 })
  in
  check_bool "mentions user-extension confinement" true
    (contains ~sub:"user-extension" msg);
  let kmsg =
    Debug.explain_fault ~cpl:P.R1
      (F.Limit_violation
         { selector = Sel.make ~rpl:P.R1 5; offset = 0; limit = 0; access = F.Read })
  in
  check_bool "mentions kernel-extension confinement" true
    (contains ~sub:"kernel-extension" kmsg)

let test_debug_disassemble () =
  let w = make_world () in
  ignore (load_at w ~org:0x1000 [ i Instr.Nop; i Instr.Hlt ]);
  let listing = Debug.disassemble w.cpu ~addr:0x1000 ~count:3 in
  check_bool "shows nop, hlt and a hole" true
    (contains ~sub:"nop" listing && contains ~sub:"hlt" listing
    && contains ~sub:"(no code)" listing)

(* --- Assembler ---------------------------------------------------------- *)

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Asm: duplicate label x") (fun () ->
      ignore (Asm.assemble [ Asm.L "x"; i Instr.Nop; Asm.L "x" ]))

let test_asm_unresolved () =
  match Asm.assemble [ i (Instr.Jmp (Instr.Label "nowhere")) ] with
  | _ -> Alcotest.fail "expected Unresolved"
  | exception Asm.Unresolved "nowhere" -> ()

let test_asm_extern_and_symbols () =
  let extern = function "ext" -> Some 0x4242 | _ -> None in
  let asm =
    Asm.assemble ~org:0x100 ~extern
      [
        Asm.L "start";
        i (Instr.Mov (reg Reg.EAX, Operand.label "ext"));
        i (Instr.Jmp (Instr.Label "start"));
      ]
  in
  check_int "local symbol" 0x100 (Asm.symbol asm "start");
  check_int "text size" 8 asm.Asm.text_size;
  match asm.Asm.instrs.(0) with
  | Instr.Mov (_, Operand.Imm 0x4242) -> ()
  | _ -> Alcotest.fail "extern not resolved"

let prop_alu_add =
  QCheck.Test.make ~name:"simulated add matches OCaml add (mod 2^32)"
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b) ->
      let w =
        run_prog
          [
            i (Instr.Mov (reg Reg.EAX, imm a));
            i (Instr.Alu (Instr.Add, reg Reg.EAX, imm b));
            i Instr.Hlt;
          ]
      in
      Cpu.get_reg w.cpu Reg.EAX = (a + b) land 0xFFFF_FFFF)

let () =
  Alcotest.run "machine"
    [
      ( "instructions",
        [
          Alcotest.test_case "mov and alu" `Quick test_mov_alu;
          Alcotest.test_case "32-bit wraparound" `Quick test_wraparound;
          Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "indexed addressing" `Quick test_indexed_addressing;
          Alcotest.test_case "movb zero-extends" `Quick test_movb_zero_extends;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "xchg" `Quick test_xchg;
          Alcotest.test_case "condition codes" `Quick test_conditions;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "loop" `Quick test_loop_countdown;
          QCheck_alcotest.to_alcotest prop_alu_add;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "cycle charges" `Quick test_cycle_accounting;
          Alcotest.test_case "marks" `Quick test_marks;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fetch unmapped" `Quick test_fetch_unmapped_faults;
          Alcotest.test_case "user vs supervisor page" `Quick
            test_user_cannot_touch_supervisor_page;
          Alcotest.test_case "kcall handler" `Quick test_kcall_handler;
        ] );
      ( "far-transfers",
        [
          Alcotest.test_case "gate raise + lret return" `Quick
            test_gate_privilege_raise_and_return;
          Alcotest.test_case "gate DPL blocks user" `Quick test_gate_dpl_blocks_user;
          Alcotest.test_case "lret descends privilege (Palladium)" `Quick
            test_lret_descends_privilege;
          Alcotest.test_case "lret cannot ascend" `Quick
            test_lret_to_more_privileged_faults;
          Alcotest.test_case "lret nulls privileged DS" `Quick
            test_lret_invalidates_privileged_ds;
          Alcotest.test_case "int/iret roundtrip" `Quick test_int_iret_roundtrip;
          Alcotest.test_case "missing IDT vector" `Quick test_int_missing_vector;
          Alcotest.test_case "save/restore" `Quick test_save_restore_state;
        ] );
      ( "debug",
        [
          Alcotest.test_case "fault explanation + trace" `Quick
            test_debug_explain_and_trace;
          Alcotest.test_case "disassemble" `Quick test_debug_disassemble;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "unresolved symbol" `Quick test_asm_unresolved;
          Alcotest.test_case "extern resolution" `Quick test_asm_extern_and_symbols;
        ] );
    ]
