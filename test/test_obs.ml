(* Tests for the observability layer: the counter registry, the trace
   ring buffer, the hand-rolled JSON emitter/parser and the
   BENCH_*.json document schema. *)

module C = Obs.Counters
module T = Obs.Trace
module J = Obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

(* --- Counters ---------------------------------------------------------- *)

let test_counters_basics () =
  let c = C.counter "test.obs.alpha" in
  let v0 = C.value c in
  C.incr c;
  C.add c 4;
  check_int "incr+add" (v0 + 5) (C.value c);
  check_bool "same handle on re-intern" true (C.counter "test.obs.alpha" == c);
  check_int "get by name" (v0 + 5) (C.get "test.obs.alpha");
  check_int "unregistered reads 0" 0 (C.get "test.obs.never-registered")

let test_counters_kind_safety () =
  let c = C.counter "test.obs.mono" in
  Alcotest.check_raises "negative add on counter"
    (Invalid_argument "Counters.add: negative increment on a monotonic counter")
    (fun () -> C.add c (-1));
  Alcotest.check_raises "set on counter"
    (Invalid_argument "Counters.set: cannot set a monotonic counter") (fun () ->
      C.set c 7);
  let g = C.gauge "test.obs.gauge" in
  C.set g 42;
  check_int "gauge set" 42 (C.value g);
  C.add g (-2);
  check_int "gauge down" 40 (C.value g);
  Alcotest.check_raises "kind mismatch on intern"
    (Invalid_argument
       "Counters: test.obs.gauge already registered with another kind")
    (fun () -> ignore (C.counter "test.obs.gauge"))

let test_counters_snapshot_delta () =
  let c = C.counter "test.obs.delta" in
  let since = C.snapshot () in
  check_bool "snapshot sorted" true
    (let names = List.map fst since in
     names = List.sort compare names);
  C.add c 3;
  let d = C.delta ~since in
  check_int "delta shows the change" 3 (List.assoc "test.obs.delta" d);
  check_bool "unchanged counters absent from delta" true
    (List.for_all (fun (_, v) -> v <> 0) d)

(* --- Trace ring -------------------------------------------------------- *)

let test_trace_disabled_is_noop () =
  T.set_enabled false;
  T.clear ();
  T.emit (T.Custom "dropped on the floor");
  check_int "no events while off" 0 (T.length ())

let test_trace_ring_overwrite () =
  T.set_capacity 4;
  T.set_enabled true;
  for i = 1 to 6 do
    T.emit ~cycles:i (T.Custom (string_of_int i))
  done;
  T.set_enabled false;
  check_int "bounded" 4 (T.length ());
  check_int "two dropped" 2 (T.dropped ());
  (match T.events () with
  | { T.event = T.Custom "3"; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest surviving event should be 3");
  let seqs = List.map (fun e -> e.T.seq) (T.events ()) in
  check_bool "sequence numbers ascend" true
    (seqs = List.sort compare seqs);
  T.set_capacity 1024;
  check_int "set_capacity clears" 0 (T.length ())

let test_trace_event_rendering () =
  let s =
    Fmt.str "%a" T.pp_event
      (T.Priv_transition { from_ring = 3; to_ring = 0; via = "int" })
  in
  check_str "priv transition" "priv r3->r0 via int" s;
  let s =
    Fmt.str "%a" T.pp_event
      (T.Protected_call { fn = "0x1000"; outcome = "ok"; cycles = 144 })
  in
  check_str "protected call" "protected call 0x1000 -> ok (144 cycles)" s

(* --- JSON -------------------------------------------------------------- *)

let test_json_escaping () =
  check_str "string escapes" {|"a\"b\\c\nd\te"|}
    (J.to_string (J.String "a\"b\\c\nd\te"));
  check_str "control chars" {|"\u0001"|} (J.to_string (J.String "\001"));
  check_str "non-finite floats are null" "[null,null,null]"
    (J.to_string (J.List [ J.Float nan; J.Float infinity; J.Float neg_infinity ]))

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("i", J.Int 42);
        ("neg", J.Int (-7));
        ("f", J.Float 1.5);
        ("s", J.String "hé\"llo\n");
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Obj [ ("x", J.Int 2) ] ]);
      ]
  in
  (match J.of_string (J.to_string doc) with
  | Ok parsed -> check_bool "compact roundtrip" true (parsed = doc)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match J.of_string (J.pretty doc) with
  | Ok parsed -> check_bool "pretty roundtrip" true (parsed = doc)
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parse_errors () =
  let bad s =
    match J.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let prop_json_roundtrip =
  let gen_leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun i -> J.Int i) QCheck.Gen.int;
        QCheck.Gen.map (fun b -> J.Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun s -> J.String s) QCheck.Gen.string_printable;
        QCheck.Gen.return J.Null;
      ]
  in
  let gen =
    QCheck.Gen.sized (fun n ->
        QCheck.Gen.fix
          (fun self n ->
            if n <= 0 then gen_leaf
            else
              QCheck.Gen.oneof
                [
                  gen_leaf;
                  QCheck.Gen.map
                    (fun l -> J.List l)
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (self (n / 2)));
                  QCheck.Gen.map
                    (fun ps ->
                      J.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) ps))
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (self (n / 2)));
                ])
          (min n 6))
  in
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make gen) (fun doc ->
      match J.of_string (J.to_string doc) with
      | Ok parsed -> parsed = doc
      | Error _ -> false)

(* --- BENCH_*.json schema ----------------------------------------------- *)

let mem name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let as_int j =
  match J.to_int j with Some i -> i | None -> Alcotest.fail "not an int"

let as_str j =
  match J.to_str j with Some s -> s | None -> Alcotest.fail "not a string"

let test_bench_json_schema () =
  let c = C.counter "test.obs.bench" in
  let since = C.snapshot () in
  C.incr c;
  let doc =
    Obs.Bench_json.document ~name:"unit" ~since
      ~body:
        [
          ( "value",
            Obs.Bench_json.measurement ~stddev:0.5 ~paper:(J.Int 142)
              (J.Int 144) );
        ]
      ()
  in
  (* the emitted text must parse back to the same tree *)
  (match J.of_string (J.pretty doc) with
  | Ok parsed -> check_bool "document parses" true (parsed = doc)
  | Error e -> Alcotest.failf "document does not parse: %s" e);
  check_str "schema tag" Obs.Bench_json.schema_version
    (as_str (mem "schema" doc));
  check_str "name" "unit" (as_str (mem "name" doc));
  let m = mem "value" doc in
  check_int "measured" 144 (as_int (mem "measured" m));
  check_int "paper" 142 (as_int (mem "paper" m));
  check_bool "counters snapshot present" true
    (List.mem "test.obs.bench" (J.keys (mem "counters" doc)));
  check_int "delta counts just this run" 1
    (as_int (mem "test.obs.bench" (mem "counters_delta" doc)));
  check_str "file name" "BENCH_unit.json" (Obs.Bench_json.file_name "unit")

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "intern/incr/add" `Quick test_counters_basics;
          Alcotest.test_case "kind safety" `Quick test_counters_kind_safety;
          Alcotest.test_case "snapshot + delta" `Quick
            test_counters_snapshot_delta;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled emit is a no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "ring overwrite + dropped" `Quick
            test_trace_ring_overwrite;
          Alcotest.test_case "event rendering" `Quick test_trace_event_rendering;
        ] );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "bench-json",
        [ Alcotest.test_case "schema" `Quick test_bench_json_schema ] );
    ]
