(* Tests for the observability layer: the counter registry, the trace
   ring buffer, the hand-rolled JSON emitter/parser and the
   BENCH_*.json document schema. *)

module C = Obs.Counters
module T = Obs.Trace
module J = Obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let rec drop_first n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop_first (n - 1) tl

(* naive substring search, enough for asserting on rendered text *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* --- Counters ---------------------------------------------------------- *)

let test_counters_basics () =
  let c = C.counter "test.obs.alpha" in
  let v0 = C.value c in
  C.incr c;
  C.add c 4;
  check_int "incr+add" (v0 + 5) (C.value c);
  check_bool "same handle on re-intern" true (C.counter "test.obs.alpha" == c);
  check_int "get by name" (v0 + 5) (C.get "test.obs.alpha");
  check_int "unregistered reads 0" 0 (C.get "test.obs.never-registered")

let test_counters_kind_safety () =
  let c = C.counter "test.obs.mono" in
  Alcotest.check_raises "negative add on counter"
    (Invalid_argument "Counters.add: negative increment on a monotonic counter")
    (fun () -> C.add c (-1));
  Alcotest.check_raises "set on counter"
    (Invalid_argument "Counters.set: cannot set a monotonic counter") (fun () ->
      C.set c 7);
  let g = C.gauge "test.obs.gauge" in
  C.set g 42;
  check_int "gauge set" 42 (C.value g);
  C.add g (-2);
  check_int "gauge down" 40 (C.value g);
  Alcotest.check_raises "kind mismatch on intern"
    (Invalid_argument
       "Counters: test.obs.gauge already registered with another kind")
    (fun () -> ignore (C.counter "test.obs.gauge"))

let test_counters_snapshot_delta () =
  let c = C.counter "test.obs.delta" in
  let since = C.snapshot () in
  check_bool "snapshot sorted" true
    (let names = List.map fst since in
     names = List.sort compare names);
  C.add c 3;
  let d = C.delta ~since in
  check_int "delta shows the change" 3 (List.assoc "test.obs.delta" d);
  check_bool "unchanged counters absent from delta" true
    (List.for_all (fun (_, v) -> v <> 0) d)

(* --- Trace ring -------------------------------------------------------- *)

let test_trace_disabled_is_noop () =
  T.set_enabled false;
  T.clear ();
  T.emit (T.Custom "dropped on the floor");
  check_int "no events while off" 0 (T.length ())

let test_trace_ring_overwrite () =
  T.set_capacity 4;
  T.set_enabled true;
  for i = 1 to 6 do
    T.emit ~cycles:i (T.Custom (string_of_int i))
  done;
  T.set_enabled false;
  check_int "bounded" 4 (T.length ());
  check_int "two dropped" 2 (T.dropped ());
  (match T.events () with
  | { T.event = T.Custom "3"; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest surviving event should be 3");
  let seqs = List.map (fun e -> e.T.seq) (T.events ()) in
  check_bool "sequence numbers ascend" true
    (seqs = List.sort compare seqs);
  T.set_capacity 1024;
  check_int "growing keeps the buffered events" 4 (T.length ());
  T.clear ()

let test_trace_set_capacity_preserves () =
  T.set_capacity 8;
  T.set_enabled true;
  for i = 1 to 4 do
    T.emit ~cycles:i (T.Custom (string_of_int i))
  done;
  T.set_enabled false;
  let before = T.events () in
  T.set_capacity 2;
  check_int "shrunk to new capacity" 2 (T.length ());
  let survivors = T.events () in
  check_bool "newest entries survive, oldest first" true
    (List.map (fun e -> e.T.event) survivors
    = [ T.Custom "3"; T.Custom "4" ]);
  check_bool "sequence numbers preserved" true
    (List.map (fun e -> e.T.seq) survivors
    = List.map (fun e -> e.T.seq) (drop_first 2 before));
  check_int "entries that no longer fit count as dropped" 2 (T.dropped ());
  (* the shrunk ring keeps rotating correctly *)
  T.set_enabled true;
  T.emit (T.Custom "5");
  T.set_enabled false;
  check_int "still bounded" 2 (T.length ());
  (match List.map (fun e -> e.T.event) (T.events ()) with
  | [ T.Custom "4"; T.Custom "5" ] -> ()
  | _ -> Alcotest.fail "ring rotation broken after shrink");
  T.set_capacity 1024;
  T.clear ()

let test_trace_event_rendering () =
  let s =
    Fmt.str "%a" T.pp_event
      (T.Priv_transition { from_ring = 3; to_ring = 0; via = "int" })
  in
  check_str "priv transition" "priv r3->r0 via int" s;
  let s =
    Fmt.str "%a" T.pp_event
      (T.Protected_call { fn = "0x1000"; outcome = "ok"; cycles = 144 })
  in
  check_str "protected call" "protected call 0x1000 -> ok (144 cycles)" s

(* --- JSON -------------------------------------------------------------- *)

let test_json_escaping () =
  check_str "string escapes" {|"a\"b\\c\nd\te"|}
    (J.to_string (J.String "a\"b\\c\nd\te"));
  check_str "control chars" {|"\u0001"|} (J.to_string (J.String "\001"));
  check_str "non-finite floats are null" "[null,null,null]"
    (J.to_string (J.List [ J.Float nan; J.Float infinity; J.Float neg_infinity ]))

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("i", J.Int 42);
        ("neg", J.Int (-7));
        ("f", J.Float 1.5);
        ("s", J.String "hé\"llo\n");
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Obj [ ("x", J.Int 2) ] ]);
      ]
  in
  (match J.of_string (J.to_string doc) with
  | Ok parsed -> check_bool "compact roundtrip" true (parsed = doc)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match J.of_string (J.pretty doc) with
  | Ok parsed -> check_bool "pretty roundtrip" true (parsed = doc)
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parse_errors () =
  let bad s =
    match J.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let prop_json_roundtrip =
  let gen_leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun i -> J.Int i) QCheck.Gen.int;
        QCheck.Gen.map (fun b -> J.Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun s -> J.String s) QCheck.Gen.string_printable;
        QCheck.Gen.return J.Null;
      ]
  in
  let gen =
    QCheck.Gen.sized (fun n ->
        QCheck.Gen.fix
          (fun self n ->
            if n <= 0 then gen_leaf
            else
              QCheck.Gen.oneof
                [
                  gen_leaf;
                  QCheck.Gen.map
                    (fun l -> J.List l)
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (self (n / 2)));
                  QCheck.Gen.map
                    (fun ps ->
                      J.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) ps))
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (self (n / 2)));
                ])
          (min n 6))
  in
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make gen) (fun doc ->
      match J.of_string (J.to_string doc) with
      | Ok parsed -> parsed = doc
      | Error _ -> false)

(* --- Histogram --------------------------------------------------------- *)

module H = Obs.Histogram

let test_histogram_buckets () =
  check_int "0 lands in bucket 0" 0 (H.bucket_of 0);
  check_int "1 lands in bucket 1" 1 (H.bucket_of 1);
  check_int "2 lands in bucket 2" 2 (H.bucket_of 2);
  check_int "3 lands in bucket 2" 2 (H.bucket_of 3);
  check_int "4 lands in bucket 3" 3 (H.bucket_of 4);
  check_int "1023 lands in bucket 10" 10 (H.bucket_of 1023);
  check_int "1024 lands in bucket 11" 11 (H.bucket_of 1024);
  check_bool "bucket 0 holds only 0" true (H.bucket_bounds 0 = (0, 0));
  check_bool "bucket 3 is [4,7]" true (H.bucket_bounds 3 = (4, 7));
  (* every power-of-two boundary: bucket_bounds inverts bucket_of *)
  for i = 1 to 30 do
    let lo, hi = H.bucket_bounds i in
    check_int "lo maps back" i (H.bucket_of lo);
    check_int "hi maps back" i (H.bucket_of hi)
  done;
  let h = H.create () in
  List.iter (H.observe h) [ 0; 1; 2; 3; 7 ];
  check_bool "non-empty buckets" true
    (H.buckets h = [ (0, 0, 1); (1, 1, 1); (2, 3, 2); (4, 7, 1) ]);
  check_bool "cumulative counts" true
    (H.cumulative h = [ (0, 1); (1, 2); (3, 4); (7, 5) ]);
  Alcotest.check_raises "negative observation"
    (Invalid_argument "Histogram.observe: negative observation") (fun () ->
      H.observe h (-1))

let test_histogram_summary () =
  let h = H.create () in
  check_bool "empty percentile" true (H.percentile h 50.0 = None);
  List.iter (H.observe h) [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  check_int "count" 10 (H.count h);
  check_int "sum" 550 (H.sum h);
  check_bool "min" true (H.min_value h = Some 10);
  check_bool "max" true (H.max_value h = Some 100);
  check_bool "p50 nearest rank" true (H.percentile h 50.0 = Some 50);
  check_bool "p90" true (H.percentile h 90.0 = Some 90);
  check_bool "p99 rounds up to max" true (H.percentile h 99.0 = Some 100)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone (p50<=p90<=p99<=max)"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 100_000))
    (fun xs ->
      let h = H.create () in
      List.iter (H.observe h) xs;
      match
        (H.percentile h 50.0, H.percentile h 90.0, H.percentile h 99.0,
         H.max_value h)
      with
      | Some p50, Some p90, Some p99, Some mx ->
          p50 <= p90 && p90 <= p99 && p99 <= mx
      | _ -> false)

let hist_fingerprint h =
  ( H.count h, H.sum h, H.min_value h, H.max_value h,
    H.percentile h 50.0, H.percentile h 99.0, H.buckets h )

let prop_merge_associative =
  let small_list =
    QCheck.(list_of_size Gen.(int_range 0 20) (int_range 0 10_000))
  in
  QCheck.Test.make ~name:"merge is associative (and counts add up)" ~count:100
    (QCheck.triple small_list small_list small_list)
    (fun (xs, ys, zs) ->
      let of_list l =
        let h = H.create () in
        List.iter (H.observe h) l;
        h
      in
      let a = of_list xs and b = of_list ys and c = of_list zs in
      let left = H.merge (H.merge a b) c in
      let right = H.merge a (H.merge b c) in
      hist_fingerprint left = hist_fingerprint right
      && H.count left = List.length xs + List.length ys + List.length zs)

let test_histogram_registry_and_json () =
  H.reset_all ();
  let h = H.get_or_create "test.hist" in
  check_bool "same handle on re-intern" true (H.get_or_create "test.hist" == h);
  List.iter (H.observe h) [ 1; 2; 3; 4 ];
  check_bool "find" true
    (match H.find "test.hist" with Some h' -> h' == h | None -> false);
  check_bool "listed" true (List.mem_assoc "test.hist" (H.all_named ()));
  let j = H.to_json h in
  (match J.member "count" j with
  | Some (J.Int 4) -> ()
  | _ -> Alcotest.fail "to_json count");
  (match (J.member "p50" j, J.member "p99" j, J.member "max" j) with
  | Some (J.Int p50), Some (J.Int p99), Some (J.Int mx) ->
      check_bool "json percentiles ordered" true (p50 <= p99 && p99 <= mx)
  | _ -> Alcotest.fail "to_json percentiles");
  H.reset_all ();
  check_bool "reset_all empties the registry" true (H.all_named () = [])

(* --- Spans ------------------------------------------------------------- *)

module S = Obs.Span

let test_span_nesting () =
  S.clear ();
  H.reset_all ();
  S.set_enabled true;
  S.begin_ "outer" ~at:0;
  S.begin_ "inner" ~at:10;
  check_int "two open" 2 (S.open_depth ());
  S.end_ "inner" ~at:30;
  S.end_ "outer" ~at:100;
  S.set_enabled false;
  check_int "all closed" 0 (S.open_depth ());
  (match S.spans () with
  | [ outer; inner ] ->
      check_str "outer first (start order)" "outer" outer.S.sp_name;
      check_int "outer depth" 0 outer.S.sp_depth;
      check_int "inner depth" 1 inner.S.sp_depth;
      check_bool "inner parented under outer" true
        (inner.S.sp_parent = Some outer.S.sp_id);
      check_int "inner duration" 20 (inner.S.sp_stop - inner.S.sp_start)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* completed spans fed the histogram registry *)
  (match H.find "inner" with
  | Some h -> check_bool "inner duration observed" true (H.sum h = 20)
  | None -> Alcotest.fail "span did not feed its histogram");
  S.clear ();
  H.reset_all ()

let test_span_unbalanced () =
  S.clear ();
  H.reset_all ();
  S.set_enabled true;
  let u0 = S.unbalanced () in
  (* an end with no matching begin is dropped *)
  S.end_ "never-opened" ~at:5;
  check_int "stray end counted" (u0 + 1) (S.unbalanced ());
  check_int "stray end records nothing" 0 (S.length ());
  (* ending an outer span implicitly closes the inner one at the same
     stamp *)
  S.begin_ "a" ~at:0;
  S.begin_ "b" ~at:10;
  S.end_ "a" ~at:50;
  S.set_enabled false;
  check_int "implicit close counted" (u0 + 2) (S.unbalanced ());
  check_int "nothing left open" 0 (S.open_depth ());
  (match S.spans () with
  | [ a; b ] ->
      check_str "a" "a" a.S.sp_name;
      check_str "b" "b" b.S.sp_name;
      check_int "b clipped to a's end" 50 b.S.sp_stop
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  S.clear ();
  H.reset_all ()

let test_span_record_and_disabled () =
  S.clear ();
  H.reset_all ();
  S.set_enabled false;
  S.begin_ "off" ~at:0;
  S.end_ "off" ~at:1;
  check_bool "disabled record returns None" true
    (S.record "off" ~start:0 ~stop:1 = None);
  check_int "disabled is a no-op" 0 (S.length ());
  S.set_enabled true;
  (match S.record "root" ~start:0 ~stop:100 with
  | None -> Alcotest.fail "record returned None while enabled"
  | Some root_id -> (
      ignore (S.record "child" ~parent:root_id ~track:3 ~start:10 ~stop:20);
      match S.spans () with
      | [ _; child ] ->
          check_bool "explicit parent" true (child.S.sp_parent = Some root_id);
          check_int "track carried" 3 child.S.sp_track
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)));
  S.set_enabled false;
  S.clear ();
  H.reset_all ()

(* --- Counters.pp grouping ---------------------------------------------- *)

let test_counters_pp_groups () =
  ignore (C.counter "ppt.alpha");
  C.add (C.counter "ppt.beta") 2;
  let s = Fmt.str "%a" C.pp () in
  let has sub = contains s sub in
  check_bool "group header present" true (has "ppt  (2 counters, subtotal 2)");
  check_bool "rows indented under the header" true (has "  ppt.alpha")

(* --- Exporters --------------------------------------------------------- *)

let test_export_chrome_trace () =
  S.clear ();
  H.reset_all ();
  S.set_enabled true;
  S.begin_ "root" ~args:[ ("k", "v") ] ~at:0;
  S.end_ "root" ~at:40;
  S.set_enabled false;
  let j = Obs.Export.chrome_trace (S.spans ()) in
  (match J.member "traceEvents" j with
  | Some (J.List [ ev ]) -> (
      (match J.member "name" ev with
      | Some (J.String "root") -> ()
      | _ -> Alcotest.fail "event name");
      (match J.member "ph" ev with
      | Some (J.String "X") -> ()
      | _ -> Alcotest.fail "complete-event phase");
      (match (J.member "ts" ev, J.member "dur" ev) with
      | Some (J.Float 0.0), Some (J.Float 40.0) -> ()
      | _ -> Alcotest.fail "ts/dur");
      match J.member "args" ev with
      | Some (J.Obj [ ("k", J.String "v") ]) -> ()
      | _ -> Alcotest.fail "args carried")
  | _ -> Alcotest.fail "traceEvents");
  (* the document must be valid JSON end to end *)
  (match J.of_string (J.pretty j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e);
  S.clear ();
  H.reset_all ()

let test_export_prometheus_and_folded () =
  S.clear ();
  H.reset_all ();
  S.set_enabled true;
  S.begin_ "root" ~at:0;
  S.begin_ "leaf" ~at:10;
  S.end_ "leaf" ~at:30;
  S.end_ "root" ~at:100;
  S.set_enabled false;
  let prom = Obs.Export.prometheus () in
  let has sub = contains prom sub in
  check_bool "histogram type line" true
    (has "# TYPE palladium_leaf histogram");
  check_bool "+Inf bucket" true (has {|palladium_leaf_bucket{le="+Inf"} 1|});
  check_bool "sum series" true (has "palladium_leaf_sum 20");
  check_bool "count series" true (has "palladium_leaf_count 1");
  let folded = Obs.Export.folded (S.spans ()) in
  check_bool "self time excludes children" true
    (String.split_on_char '\n' folded |> List.mem "root 80");
  check_bool "stack paths use ;" true
    (String.split_on_char '\n' folded |> List.mem "root;leaf 20");
  S.clear ();
  H.reset_all ()

(* --- BENCH_*.json schema ----------------------------------------------- *)

let mem name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let as_int j =
  match J.to_int j with Some i -> i | None -> Alcotest.fail "not an int"

let as_str j =
  match J.to_str j with Some s -> s | None -> Alcotest.fail "not a string"

let test_bench_json_schema () =
  let c = C.counter "test.obs.bench" in
  let since = C.snapshot () in
  C.incr c;
  let doc =
    Obs.Bench_json.document ~name:"unit" ~since
      ~body:
        [
          ( "value",
            Obs.Bench_json.measurement ~stddev:0.5 ~paper:(J.Int 142)
              (J.Int 144) );
        ]
      ()
  in
  (* the emitted text must parse back to the same tree *)
  (match J.of_string (J.pretty doc) with
  | Ok parsed -> check_bool "document parses" true (parsed = doc)
  | Error e -> Alcotest.failf "document does not parse: %s" e);
  check_str "schema tag" Obs.Bench_json.schema_version
    (as_str (mem "schema" doc));
  check_str "name" "unit" (as_str (mem "name" doc));
  let m = mem "value" doc in
  check_int "measured" 144 (as_int (mem "measured" m));
  check_int "paper" 142 (as_int (mem "paper" m));
  check_bool "counters snapshot present" true
    (List.mem "test.obs.bench" (J.keys (mem "counters" doc)));
  check_int "delta counts just this run" 1
    (as_int (mem "test.obs.bench" (mem "counters_delta" doc)));
  check_str "file name" "BENCH_unit.json" (Obs.Bench_json.file_name "unit")

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "intern/incr/add" `Quick test_counters_basics;
          Alcotest.test_case "kind safety" `Quick test_counters_kind_safety;
          Alcotest.test_case "snapshot + delta" `Quick
            test_counters_snapshot_delta;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled emit is a no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "ring overwrite + dropped" `Quick
            test_trace_ring_overwrite;
          Alcotest.test_case "set_capacity preserves newest" `Quick
            test_trace_set_capacity_preserves;
          Alcotest.test_case "event rendering" `Quick test_trace_event_rendering;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "summary statistics" `Quick test_histogram_summary;
          Alcotest.test_case "registry + to_json" `Quick
            test_histogram_registry_and_json;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_merge_associative;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting + histogram feed" `Quick test_span_nesting;
          Alcotest.test_case "unbalanced ends" `Quick test_span_unbalanced;
          Alcotest.test_case "record + disabled no-ops" `Quick
            test_span_record_and_disabled;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace events" `Quick
            test_export_chrome_trace;
          Alcotest.test_case "prometheus + folded stacks" `Quick
            test_export_prometheus_and_folded;
        ] );
      ( "counters-pp",
        [ Alcotest.test_case "prefix grouping" `Quick test_counters_pp_groups ]
      );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "bench-json",
        [ Alcotest.test_case "schema" `Quick test_bench_json_schema ] );
    ]
