(* Tests for the load-time extension verifier: acceptance of every
   shipped image, named rejections for the unsafe classes, robustness
   over random programs, the SFI containment property (including the
   guard sequences for the formerly-escaping instructions) and
   loader-policy integration. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let i x = Asm.I x

let reg r = Operand.Reg r

let imm v = Operand.Imm v

let dref ?disp r = Operand.deref ?disp r

let region = (0, Pconfig.kernel_ext_segment_bytes)

(* Mirror of the loaders' profile: entries from exports, externs from
   the image's own symbol tables. *)
let report_of ?require_termination (image : Image.t) =
  let data_names =
    List.map (fun (d : Image.data_item) -> d.Image.d_name) image.Image.data
    @ List.map (fun (b : Image.bss_item) -> b.Image.b_name) image.Image.bss
  in
  let externs name =
    List.mem name data_names || List.mem name image.Image.imports
  in
  Verify.verify ~entries:image.Image.exports ~externs ~region
    ~allowed_far:(fun _ -> true)
    ?require_termination ~name:image.Image.name image.Image.text

let has_error check (r : Verify.report) =
  List.exists
    (fun (d : Verify.diag) ->
      d.Verify.d_check = check && d.Verify.d_severity = Verify.Error)
    r.Verify.r_diags

(* --- acceptance ----------------------------------------------------- *)

let test_shipped_images_accepted () =
  List.iter
    (fun image ->
      let r = report_of image in
      if not (Verify.ok r) then
        Alcotest.failf "%s rejected: %a" image.Image.name Verify.pp_report r)
    [
      Ulib.null_image;
      Ulib.strrev_image;
      Ulib.libc_image;
      Ulib.strlen_client_image;
      Ulib.counter_image;
      Ulib.service_client_image ~slot_addr:0x2000;
      Ulib.work_image ~units:16;
      Ulib.rogue_write_image;
      Ulib.rogue_read_image;
      Ulib.rogue_loop_image;
      Native_compile.image (Filter_expr.canonical 4);
    ]

(* The compiled filter also proves termination (it is branch-forward
   only), which Native_compile.load requires. *)
let test_filter_terminates () =
  let r =
    report_of ~require_termination:true
      (Native_compile.image (Filter_expr.canonical 4))
  in
  check_bool "filter verifies with termination required" true (Verify.ok r)

(* --- the five unsafe classes, each with its named check ------------- *)

let test_rejects_oob_store () =
  let r =
    report_of
      (Image.create ~name:"oob" ~exports:[ "f" ]
         [
           Asm.L "f";
           i (Instr.Mov (reg Reg.EAX, imm (snd region)));
           i (Instr.Mov (dref Reg.EAX, imm 1));
           i Instr.Ret;
         ])
  in
  check_bool "rejected" false (Verify.ok r);
  check_bool "bounds error" true (has_error Verify.Bounds r)

let test_rejects_unknown_target () =
  let r =
    report_of
      (Image.create ~name:"wild" ~exports:[ "f" ]
         [ Asm.L "f"; i (Instr.Jmp (Instr.Label "nowhere")) ])
  in
  check_bool "rejected" false (Verify.ok r);
  check_bool "cfg error" true (has_error Verify.Cfg r);
  (* an absolute branch outside the image is the same class *)
  let r2 = report_of Ulib.rogue_jump_kernel_image in
  check_bool "kernel jump rejected" true (has_error Verify.Cfg r2)

let test_rejects_privileged () =
  let r = report_of Ulib.rogue_syscall_image in
  check_bool "rejected" false (Verify.ok r);
  check_bool "privileged error" true (has_error Verify.Privileged r);
  let r2 =
    report_of
      (Image.create ~name:"sreg" ~exports:[ "f" ]
         [
           Asm.L "f";
           i (Instr.Mov_to_sreg (Reg.DS, reg Reg.EAX));
           i Instr.Ret;
         ])
  in
  check_bool "sreg write rejected" true (has_error Verify.Privileged r2)

let test_rejects_unbalanced_stack () =
  let r =
    report_of
      (Image.create ~name:"leak" ~exports:[ "f" ]
         [ Asm.L "f"; i (Instr.Push (reg Reg.EAX)); i Instr.Ret ])
  in
  check_bool "rejected" false (Verify.ok r);
  check_bool "stack error" true (has_error Verify.Stack r)

let test_rejects_indirect_and_nontermination () =
  let r =
    report_of
      (Image.create ~name:"ind" ~exports:[ "f" ]
         [ Asm.L "f"; i (Instr.Jmp_ind (reg Reg.EAX)) ])
  in
  check_bool "indirect rejected" false (Verify.ok r);
  check_bool "indirect error" true (has_error Verify.Indirect r);
  let r2 = report_of ~require_termination:true Ulib.rogue_loop_image in
  check_bool "loop rejected under termination" false (Verify.ok r2);
  check_bool "termination error" true (has_error Verify.Termination r2)

(* --- robustness: the verifier never raises --------------------------- *)

let arb_program =
  let open QCheck.Gen in
  let any_reg =
    oneofl
      [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI; Reg.EBP; Reg.ESP ]
  in
  let label = oneofl [ "l0"; "l1"; "l2"; "nowhere" ] in
  let operand =
    oneof
      [
        map (fun r -> Operand.Reg r) any_reg;
        map (fun n -> Operand.Imm n) (int_bound 0x10000);
        map2 (fun r d -> Operand.deref ~disp:d r) any_reg (int_bound 4096);
        map Operand.label label;
      ]
  in
  let target =
    oneof
      [
        map (fun l -> Instr.Label l) label;
        map (fun a -> Instr.Abs a) (int_bound 256);
      ]
  in
  let instr =
    oneof
      [
        map2 (fun d s -> Instr.Mov (d, s)) operand operand;
        map (fun o -> Instr.Push o) operand;
        map (fun o -> Instr.Pop o) operand;
        map3
          (fun op d s -> Instr.Alu (op, d, s))
          (oneofl [ Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Xor ])
          operand operand;
        map2 (fun a b -> Instr.Xchg (a, b)) operand operand;
        map (fun o -> Instr.Neg o) operand;
        map (fun o -> Instr.Not o) operand;
        map (fun t -> Instr.Jmp t) target;
        map2 (fun c t -> Instr.Jcc (c, t)) (oneofl [ Instr.Eq; Instr.Ne ]) target;
        map (fun t -> Instr.Call t) target;
        return Instr.Ret;
        map (fun n -> Instr.Int_ n) (int_bound 255);
        map (fun o -> Instr.Jmp_ind o) operand;
        return Instr.Hlt;
      ]
  in
  let item =
    frequency
      [ (6, map (fun x -> Asm.I x) instr); (1, map (fun l -> Asm.L l) label) ]
  in
  QCheck.make
    ~print:(fun p -> Fmt.str "%d items" (List.length p))
    (list_size (int_bound 40) item)

let prop_never_raises =
  QCheck.Test.make ~count:300 ~name:"verify never raises on random programs"
    arb_program (fun program ->
      let r =
        Verify.verify ~entries:[ "l0" ]
          ~externs:(fun s -> s = "nowhere")
          ~region ~name:"fuzz" program
      in
      ignore (Verify.ok r);
      ignore (Fmt.str "%a" Verify.pp_report r);
      ignore (Verify.report_json r);
      true)

(* --- gamma-soundness of the abstract domains -------------------------- *)

(* Every Vdomain/Vtaint transfer must over-approximate the CPU's
   concrete operation (which masks register writes to 32 bits).  The
   generators produce (abstract, concrete) pairs with the concrete
   value inside the abstraction's concretisation; the properties check
   membership is preserved through each transfer, mirrored exactly as
   the verifier composes them ([wrap32] at every write point). *)

let wrap_limit = 1 lsl 32

let mask32 v = v land (wrap_limit - 1)

let mem_dom v = function
  | Vdomain.Bot -> false
  | Vdomain.Top -> true
  | Vdomain.Itv (l, h) -> l <= v && v <= h
  | Vdomain.Sp _ -> true (* not produced by these generators *)

(* An abstract interval containing [x]: exact, padded, or Top. *)
let gen_dom_for x =
  let open QCheck.Gen in
  let* shape = int_bound 3 in
  match shape with
  | 0 -> return (Vdomain.const x)
  | 1 -> return Vdomain.top
  | _ ->
      let* sl = int_bound 0x10000 in
      let* sh = int_bound 0x10000 in
      return (Vdomain.itv (x - sl) (x + sh))

let gen_dom_pair =
  let open QCheck.Gen in
  let* x = int_bound (wrap_limit - 1) in
  let* a = gen_dom_for x in
  return (a, x)

(* A taint tag whose claimed bound contains [x], paired with a partner
   interval that also contains it — the reduced-product invariant.
   [Const] additionally promises the partner interval is exact. *)
let gen_taint_pair =
  let open QCheck.Gen in
  let* x = int_bound (wrap_limit - 1) in
  let* shape = int_bound 3 in
  let* t, n =
    match shape with
    | 0 ->
        let* n = gen_dom_for x in
        return (Vtaint.untrusted, n)
    | 1 -> return (Vtaint.const, Vdomain.const x)
    | 2 ->
        let* n = gen_dom_for x in
        return (Vtaint.masked (x + 7), n)
    | _ ->
        let* n = gen_dom_for x in
        return (Vtaint.region (max 0 (x - 5)) (x + 5), n)
  in
  return ((t, n), x)

let arb_dom_op =
  QCheck.make
    ~print:(fun ((a, x), (b, y), n) ->
      Fmt.str "a=%a x=%d b=%a y=%d n=%d" Vdomain.pp a x Vdomain.pp b y n)
    QCheck.Gen.(
      let* p1 = gen_dom_pair and* p2 = gen_dom_pair and* n = int_bound 40 in
      return (p1, p2, n))

let prop_vdomain_sound =
  QCheck.Test.make ~count:2000 ~name:"Vdomain transfers over-approximate the CPU"
    arb_dom_op (fun ((a, x), (b, y), n) ->
      let chk op_name abs conc =
        if not (mem_dom conc (Vdomain.wrap32 abs)) then
          QCheck.Test.fail_reportf "%s: %d not in %a (x=%d y=%d)" op_name conc
            Vdomain.pp (Vdomain.wrap32 abs) x y
        else true
      in
      chk "add" (Vdomain.add a b) (mask32 (x + y))
      && chk "sub" (Vdomain.sub a b) (mask32 (x - y))
      && chk "band" (Vdomain.band a b) (x land y)
      && chk "bor" (Vdomain.bor a b) (x lor y)
      && chk "bxor" (Vdomain.bxor a b) (x lxor y)
      && chk "neg" (Vdomain.neg a) (mask32 (-x))
      && chk "shl" (Vdomain.shl a n) (mask32 (x lsl (n land 31)))
      && chk "shr" (Vdomain.shr a n) (x lsr (n land 31))
      && chk "mul" (Vdomain.mul a b) (mask32 (x * y))
      && chk "join" (Vdomain.join a b) x
      && chk "widen" (Vdomain.widen a b) y)

let mem_taint v t =
  match Vtaint.bound t with Some (l, h) -> l <= v && v <= h | None -> true

let arb_taint_op =
  QCheck.make
    ~print:(fun (((t1, n1), x), ((t2, n2), y), n) ->
      Fmt.str "t1=%a n1=%a x=%d t2=%a n2=%a y=%d n=%d" Vtaint.pp t1 Vdomain.pp
        n1 x Vtaint.pp t2 Vdomain.pp n2 y n)
    QCheck.Gen.(
      let* p1 = gen_taint_pair and* p2 = gen_taint_pair and* n = int_bound 40 in
      return (p1, p2, n))

(* The taint properties hold only when each operand's *claimed* bound
   actually contains its concrete value; [gen_taint_pair] guarantees
   the taint side, and we additionally require the partner interval to
   agree (as it does by construction inside the analysis). *)
let prop_vtaint_sound =
  QCheck.Test.make ~count:2000 ~name:"Vtaint transfers over-approximate the CPU"
    arb_taint_op (fun (((t1, n1), x), ((t2, n2), y), n) ->
      let a : Vtaint.opd = (t1, n1) and b : Vtaint.opd = (t2, n2) in
      let chk op_name abs conc =
        if not (mem_taint conc abs) then
          QCheck.Test.fail_reportf "%s: %d escapes %a (x=%d y=%d)" op_name conc
            Vtaint.pp abs x y
        else true
      in
      chk "add" (Vtaint.add a b) (mask32 (x + y))
      && chk "sub" (Vtaint.sub a b) (mask32 (x - y))
      && chk "band" (Vtaint.band a b) (x land y)
      && chk "bor" (Vtaint.bor a b) (x lor y)
      && chk "bxor" (Vtaint.bxor a b) (x lxor y)
      && chk "neg" (Vtaint.neg a) (mask32 (-x))
      && chk "shl" (Vtaint.shl a n) (mask32 (x lsl (n land 31)))
      && chk "shr" (Vtaint.shr a n) (x lsr (n land 31))
      && chk "mul" (Vtaint.mul a b) (mask32 (x * y))
      && chk "join" (Vtaint.join t1 t2) x
      && chk "widen" (Vtaint.widen t1 t2) y)

(* Deterministic witnesses for the native-int overflow class in the
   taint transfers: the unguarded products/shifts wrap mod 2^63 and can
   land back inside [0, 2^32), so the uniform qcheck sampler almost
   never hits them.  mul: bounds [0,0x80000001] x [0,0xFFFFFFFF] give
   ah*bh = 0x7FFFFFFF after 63-bit wrap — a guard comparing the wrapped
   product would claim Masked 0x7FFFFFFF while the concrete
   mask32(1 * 0xC0000000) = 0xC0000000 escapes it.  shl: ah >= 2^31
   shifted by 31 also wraps. *)
let test_taint_overflow_witnesses () =
  let opd t = ((t, Vdomain.top) : Vtaint.opd) in
  let a = opd (Vtaint.masked 0x80000001) in
  let b = opd (Vtaint.masked 0xFFFFFFFF) in
  let conc = mask32 (1 * 0xC0000000) in
  check_bool "mul witness stays in gamma" true
    (match Vtaint.bound (Vtaint.mul a b) with
    | Some (l, h) -> l <= conc && conc <= h
    | None -> true);
  let s = opd (Vtaint.masked 0x80000001) in
  let conc_shl = mask32 (0x80000001 lsl 31) in
  check_bool "shl witness stays in gamma" true
    (match Vtaint.bound (Vtaint.shl s 31) with
    | Some (l, h) -> l <= conc_shl && conc_shl <= h
    | None -> true)

(* --- call summaries --------------------------------------------------- *)

let test_vsum_join () =
  let a =
    {
      Vsum.s_esp_delta = Some (0, 0);
      s_clobbers = Array.init Reg.count (fun i -> i = Reg.index Reg.EAX);
      s_ret_val = (Vdomain.const 5, Vtaint.const);
      s_writes_mem = false;
      s_returns = true;
      s_cycles = Some (3, 10);
      s_stack_bytes = Some 8;
      s_instrs = Some 4;
    }
  in
  let b =
    {
      Vsum.s_esp_delta = Some (4, 4);
      s_clobbers = Array.init Reg.count (fun i -> i = Reg.index Reg.EBX);
      s_ret_val = (Vdomain.const 9, Vtaint.const);
      s_writes_mem = true;
      s_returns = true;
      s_cycles = Some (5, 20);
      s_stack_bytes = Some 4;
      s_instrs = None;
    }
  in
  let j = Vsum.join a b in
  check_bool "delta band" true (j.Vsum.s_esp_delta = Some (0, 4));
  check_bool "cycle band joined" true (j.Vsum.s_cycles = Some (3, 20));
  check_bool "stack band joined" true (j.Vsum.s_stack_bytes = Some 8);
  check_bool "instr top sticky" true (j.Vsum.s_instrs = None);
  check_bool "eax clobbered" true j.Vsum.s_clobbers.(Reg.index Reg.EAX);
  check_bool "ebx clobbered" true j.Vsum.s_clobbers.(Reg.index Reg.EBX);
  check_bool "ecx untouched" false j.Vsum.s_clobbers.(Reg.index Reg.ECX);
  check_bool "ret val joined" true
    (Vdomain.equal (fst j.Vsum.s_ret_val) (Vdomain.itv 5 9));
  check_bool "writes-mem sticky" true j.Vsum.s_writes_mem;
  check_bool "no-return absorbs" true
    (Vsum.join a Vsum.no_return).Vsum.s_returns

(* A stdcall callee ([ret 4]) balances its caller's argument push: the
   caller's own [ret] must see the entry depth, which only works if the
   call site applies the callee's summary rather than a havoc. *)
let test_stdcall_summary_balances () =
  let r =
    report_of
      (Image.create ~name:"stdcall" ~exports:[ "f" ]
         [
           Asm.L "f";
           i (Instr.Push (imm 0x123));
           i (Instr.Call (Instr.Label "callee"));
           i Instr.Ret;
           Asm.L "callee";
           i (Instr.Mov (reg Reg.EAX, imm 5));
           i (Instr.Ret_imm 4);
         ])
  in
  if not (Verify.ok r) then Alcotest.failf "stdcall rejected: %a" Verify.pp_report r

let class_at (r : Verify.report) idx =
  match
    List.find_opt (fun (a : Verify.access) -> a.Verify.a_index = idx) r.Verify.r_accesses
  with
  | Some a -> a.Verify.a_class
  | None -> Alcotest.failf "no access recorded at instr %d" idx

(* The callee's summary carries its return-value interval and its
   clobber set: EAX's post-call constant proves a load, and a register
   the callee never touches keeps the caller's value. *)
let test_summary_retval_and_clobbers () =
  let r =
    Verify.verify ~entries:[ "g" ] ~region:(0, 4096) ~name:"retval"
      [
        Asm.L "g";
        i (Instr.Call (Instr.Label "five")); (* 0 *)
        i (Instr.Mov (reg Reg.EBX, dref ~disp:0x100 Reg.EAX)); (* 1 *)
        i Instr.Ret; (* 2 *)
        Asm.L "five";
        i (Instr.Mov (reg Reg.EAX, imm 5)); (* 3 *)
        i Instr.Ret; (* 4 *)
      ]
  in
  check_bool "retval program verifies" true (Verify.ok r);
  check_bool "load through returned EAX proved" true (class_at r 1 = Verify.Proved);
  let r2 =
    Verify.verify ~entries:[ "h" ] ~region:(0, 4096) ~name:"clobber"
      [
        Asm.L "h";
        i (Instr.Mov (reg Reg.EBX, imm 0x10)); (* 0 *)
        i (Instr.Call (Instr.Label "noop")); (* 1 *)
        i (Instr.Mov (reg Reg.ECX, dref Reg.EBX)); (* 2 *)
        i Instr.Ret; (* 3 *)
        Asm.L "noop";
        i (Instr.Mov (reg Reg.EAX, imm 7)); (* 4 *)
        i Instr.Ret; (* 5 *)
      ]
  in
  check_bool "unclobbered base survives the call" true
    (class_at r2 2 = Verify.Proved)

(* The S1 pattern: a masked index inside a loop.  Interval widening
   blows the induction variable to the saturation bound, but the
   re-applied mask is a loop-invariant taint fact, so the reduced
   product recovers the finite bound and proves the access. *)
let test_masked_loop_proved () =
  let r =
    Verify.verify ~entries:[ "f" ] ~region:(0, 0x1000) ~name:"maskloop"
      [
        Asm.L "f";
        i (Instr.Mov (reg Reg.EAX, imm 0)); (* 0 *)
        Asm.L "lp";
        i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 1)); (* 1 *)
        i (Instr.Alu (Instr.And, reg Reg.EAX, imm 0xff)); (* 2 *)
        i (Instr.Movb (reg Reg.EBX, dref ~disp:0x100 Reg.EAX)); (* 3 *)
        i (Instr.Cmp (reg Reg.EBX, imm 0)); (* 4 *)
        i (Instr.Jcc (Instr.Ne, Instr.Label "lp")); (* 5 *)
        i Instr.Ret; (* 6 *)
      ]
  in
  check_bool "masked loop verifies" true (Verify.ok r);
  check_bool "masked-index load proved inside the loop" true
    (class_at r 3 = Verify.Proved)

(* --- static gate-operand lint ----------------------------------------- *)

let gate_sel = X86.Selector.(encode (make ~rpl:X86.Privilege.R1 5))

let lcall_const_prog =
  [
    Asm.L "f";
    i (Instr.Mov (reg Reg.EAX, imm gate_sel));
    i (Instr.Lcall_ind (reg Reg.EAX));
    i Instr.Ret;
  ]

let test_gate_operand_lint () =
  (* vetted constant selector: accepted, and exported as the static
     far-target set the loader feeds to the reachability audit *)
  let ok_r =
    Verify.verify ~entries:[ "f" ]
      ~allowed_far:(fun s -> s = gate_sel)
      ~name:"gate-ok" lcall_const_prog
  in
  check_bool "vetted static selector accepted" true (Verify.ok ok_r);
  check_bool "far targets exported" true
    (ok_r.Verify.r_far_targets = Some [ gate_sel land 0xFFFF ]);
  (* the same program against an empty gate table: a static error even
     though far-indirect calls are allowed in general *)
  let bad_r =
    Verify.verify ~entries:[ "f" ]
      ~allowed_far:(fun _ -> false)
      ~allow_far_indirect:true ~name:"gate-bad" lcall_const_prog
  in
  check_bool "unvetted static selector rejected" false (Verify.ok bad_r);
  check_bool "indirect error" true (has_error Verify.Indirect bad_r);
  (* a genuinely dynamic operand stays a run-time matter: no static
     far-target set for the loader *)
  let dyn_r =
    Verify.verify ~entries:[ "f" ]
      ~allowed_far:(fun _ -> false)
      ~name:"gate-dyn"
      [
        Asm.L "f";
        i (Instr.Mov (reg Reg.EAX, dref ~disp:0x40 Reg.EBX));
        i (Instr.Lcall_ind (reg Reg.EAX));
        i Instr.Ret;
      ]
  in
  check_bool "dynamic selector tolerated" true (Verify.ok dyn_r);
  check_bool "no static far-target set" true (dyn_r.Verify.r_far_targets = None)

(* --- SFI regression: the formerly-escaping stores -------------------- *)

(* Each of these stores through an address provably outside the
   region; the raw program must fail the containment check and the
   rewritten one must pass it (the fix for the Xchg/Neg/Not/Pop escape
   in the original rewriter). *)
let test_sfi_containment_regression () =
  let sfi_region = { Sfi.base = 0; size = 4096 } in
  let vregion = (0, 4096) in
  let escape body = [ Asm.L "f"; i (Instr.Mov (reg Reg.EAX, imm 0x100000)) ] @ body @ [ i Instr.Ret ] in
  List.iter
    (fun (name, body) ->
      let raw = escape body in
      (match Verify.sfi_check ~entries:[ "f" ] ~region:vregion raw with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: raw escape not caught" name);
      let rewritten = Sfi.rewrite_program Sfi.Write_only sfi_region raw in
      match Verify.sfi_check ~entries:[ "f" ] ~region:vregion rewritten with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: rewritten still escapes: %s" name msg)
    [
      ("mov", [ i (Instr.Mov (dref Reg.EAX, imm 1)) ]);
      ("xchg", [ i (Instr.Xchg (dref Reg.EAX, reg Reg.EBX)) ]);
      ("neg", [ i (Instr.Neg (dref Reg.EAX)) ]);
      ("not", [ i (Instr.Not (dref Reg.EAX)) ]);
      ("pop", [ i (Instr.Push (reg Reg.EBX)); i (Instr.Pop (dref Reg.EAX)) ]);
    ]

(* Execution equivalence of the new guard sequences: a module mixing
   neg/not/xchg/push-mem/pop-mem computes the same value raw and
   sandboxed (full-width region: coercion is the identity). *)
let test_guard_sequences_execute () =
  let k = Kernel.boot () in
  let task = Kernel.create_task k ~name:"t" in
  let image name =
    Image.create ~name
      ~bss:[ Image.bss_item ~align:4096 "buf" 4096 ]
      ~exports:[ "mix" ]
      [
        Asm.L "mix";
        i (Instr.Mov (reg Reg.EDX, dref ~disp:4 Reg.ESP));
        i (Instr.Mov (dref Reg.EDX, imm 5));
        i (Instr.Neg (dref Reg.EDX));
        i (Instr.Not (dref Reg.EDX)); (* -5 notted = 4 *)
        i (Instr.Mov (reg Reg.EBX, imm 7));
        i (Instr.Xchg (dref Reg.EDX, reg Reg.EBX)); (* mem=7, ebx=4 *)
        i (Instr.Push (dref Reg.EDX)); (* push 7 *)
        i (Instr.Pop (dref ~disp:4 Reg.EDX)); (* mem+4 = 7 *)
        i (Instr.Mov (reg Reg.EAX, dref Reg.EDX)); (* 7 *)
        i (Instr.Alu (Instr.Add, reg Reg.EAX, reg Reg.EBX)); (* 11 *)
        i (Instr.Alu (Instr.Add, reg Reg.EAX, dref ~disp:4 Reg.EDX)); (* 18 *)
        i Instr.Ret;
      ]
  in
  let run image =
    let km = Kmod.insmod k image in
    match Kmod.invoke km task ~fn:"mix" ~arg:(Kmod.symbol km "buf") with
    | Kernel.Completed, v, _ -> v
    | _ -> Alcotest.fail "mix run failed"
  in
  let raw = run (image "mixraw") in
  check_int "raw result" 18 raw;
  let sandboxed =
    run
      (Sfi.sandbox_image Sfi.Read_write
         { Sfi.base = 0; size = 1 lsl 30 }
         (image "mixsfi"))
  in
  check_int "sandboxed result equals raw" raw sandboxed

(* --- verified elision ------------------------------------------------ *)

let test_verified_elides_guards () =
  let text = Native_compile.filter_text (Filter_expr.canonical 4) in
  let sfi_region = { Sfi.base = 0; size = 1 lsl 30 } in
  let arg = (0, (1 lsl 30) - 4096) in
  let full =
    Sfi.inserted_instructions ~entries:[ "filter" ] ~arg ~region:sfi_region
      Sfi.Read_write text
  in
  let verified =
    Sfi.inserted_instructions ~mode:Sfi.Verified ~entries:[ "filter" ] ~arg
      ~region:sfi_region Sfi.Read_write text
  in
  check_bool "guards elided" true (verified < full);
  check_bool "still some guards" true (verified >= 0)

(* The headline result, pinned: with taint tracking the verifier
   discharges every guard in the compiled packet filter.  Mirrors the
   bench sfi configuration (2 KiB packet buffer at the segment base). *)
let test_filter_full_elision () =
  let text = Native_compile.filter_text (Filter_expr.canonical 4) in
  let sfi_region = { Sfi.base = 0; size = 1 lsl 30 } in
  let arg = (0, (1 lsl 30) - 2048) in
  let full =
    Sfi.inserted_instructions ~entries:[ "filter" ] ~arg ~region:sfi_region
      Sfi.Read_write text
  in
  let verified =
    Sfi.inserted_instructions ~mode:Sfi.Verified ~entries:[ "filter" ] ~arg
      ~region:sfi_region Sfi.Read_write text
  in
  check_int "unverified guard count" 55 full;
  check_int "every guard elided" 0 verified

(* --- loader integration under the Reject policy ---------------------- *)

let with_policy p f =
  let saved = Verify.policy () in
  Fun.protect
    ~finally:(fun () -> Verify.set_policy saved)
    (fun () ->
      Verify.set_policy p;
      f ())

let test_reject_policy_loaders () =
  with_policy Verify.Reject (fun () ->
      (* classic module path *)
      let k = Kernel.boot () in
      ignore (Kmod.insmod k Ulib.strrev_image);
      (* extension segment path: good module loads, rogue raises *)
      let w = Palladium.boot () in
      let seg = Palladium.create_kernel_segment w in
      ignore (Kernel_ext.insmod seg Ulib.counter_image);
      (match Kernel_ext.insmod seg Ulib.rogue_syscall_image with
      | _ -> Alcotest.fail "rogue syscall module should have been rejected"
      | exception Verify.Rejected (name, r) ->
          check_bool "rejection names the image" true (name = "roguesys");
          check_bool "privileged diag attached" true
            (has_error Verify.Privileged r));
      (* the compiled filter still loads: its termination proof holds *)
      let seg2 = Palladium.create_kernel_segment w in
      let task = Kernel.create_task (Palladium.kernel w) ~name:"netd" in
      let nf = Native_compile.load seg2 (Filter_expr.canonical 2) in
      let pkt = Packet.to_bytes (Pkt_gen.matching_packet ()) in
      match Native_compile.run nf task ~packet:pkt with
      | Ok (v, _) -> check_int "filter accepts the target packet" 1 v
      | Error e -> Alcotest.failf "filter run: %a" Kernel_ext.pp_invoke_error e)

let test_off_policy_skips () =
  with_policy Verify.Off (fun () ->
      (* a statically-rejected image loads when verification is off —
         run-time protection is then the only line of defence *)
      let w = Palladium.boot () in
      let seg = Palladium.create_kernel_segment w in
      ignore (Kernel_ext.insmod seg Ulib.rogue_syscall_image))

let () =
  Alcotest.run "verify"
    [
      ( "acceptance",
        [
          Alcotest.test_case "all shipped images verify" `Quick
            test_shipped_images_accepted;
          Alcotest.test_case "compiled filter proves termination" `Quick
            test_filter_terminates;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "out-of-bounds store" `Quick test_rejects_oob_store;
          Alcotest.test_case "unknown control-flow target" `Quick
            test_rejects_unknown_target;
          Alcotest.test_case "privileged instruction" `Quick
            test_rejects_privileged;
          Alcotest.test_case "unbalanced stack" `Quick
            test_rejects_unbalanced_stack;
          Alcotest.test_case "indirect flow and non-termination" `Quick
            test_rejects_indirect_and_nontermination;
        ] );
      ( "robustness",
        [ QCheck_alcotest.to_alcotest prop_never_raises ] );
      ( "gamma-soundness",
        [
          QCheck_alcotest.to_alcotest prop_vdomain_sound;
          QCheck_alcotest.to_alcotest prop_vtaint_sound;
          Alcotest.test_case "taint transfer overflow witnesses" `Quick
            test_taint_overflow_witnesses;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "Vsum.join" `Quick test_vsum_join;
          Alcotest.test_case "stdcall callee balances the caller" `Quick
            test_stdcall_summary_balances;
          Alcotest.test_case "return value and clobber set" `Quick
            test_summary_retval_and_clobbers;
        ] );
      ( "taint",
        [
          Alcotest.test_case "masked index proved inside a loop" `Quick
            test_masked_loop_proved;
        ] );
      ( "gates",
        [ Alcotest.test_case "gate-operand lint" `Quick test_gate_operand_lint ] );
      ( "sfi",
        [
          Alcotest.test_case "containment regression" `Quick
            test_sfi_containment_regression;
          Alcotest.test_case "guard sequences execute correctly" `Quick
            test_guard_sequences_execute;
          Alcotest.test_case "verified mode elides guards" `Quick
            test_verified_elides_guards;
          Alcotest.test_case "packet filter fully elides" `Quick
            test_filter_full_elision;
        ] );
      ( "policy",
        [
          Alcotest.test_case "Reject gates the loaders" `Quick
            test_reject_policy_loaders;
          Alcotest.test_case "Off skips verification" `Quick
            test_off_policy_skips;
        ] );
    ]
