(* Unit and property tests for the x86 protection-hardware model. *)

module P = X86.Privilege
module Sel = X86.Selector
module Desc = X86.Descriptor
module DT = X86.Desc_table
module PM = X86.Phys_mem
module Pg = X86.Paging
module Seg = X86.Segmentation
module F = X86.Fault

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let expect_fault name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a fault" name
  | exception F.Fault _ -> ()

(* --- Privilege ------------------------------------------------------- *)

let test_privilege_order () =
  check_bool "r0 most privileged" true (P.is_at_least_as_privileged P.R0 P.R3);
  check_bool "r3 least privileged" false (P.is_at_least_as_privileged P.R3 P.R0);
  check_bool "reflexive" true (P.is_at_least_as_privileged P.R2 P.R2);
  check_bool "more" true (P.more_privileged P.R1 P.R2);
  check_bool "less" true (P.less_privileged P.R3 P.R2);
  Alcotest.(check int) "weakest" 3 (P.to_int (P.weakest P.R1 P.R3))

let test_default_page_levels () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "SPL0-2 supervisor" true
        (P.default_page_level r = P.Supervisor))
    [ P.R0; P.R1; P.R2 ];
  check_bool "SPL3 user" true (P.default_page_level P.R3 = P.User)

let test_page_access_matrix () =
  check_bool "r0 sup" true (P.may_access_page P.R0 P.Supervisor);
  check_bool "r2 sup" true (P.may_access_page P.R2 P.Supervisor);
  check_bool "r3 sup" false (P.may_access_page P.R3 P.Supervisor);
  check_bool "r3 user" true (P.may_access_page P.R3 P.User);
  check_bool "r0 user" true (P.may_access_page P.R0 P.User)

let prop_privilege_roundtrip =
  QCheck.Test.make ~name:"privilege of_int/to_int roundtrip"
    QCheck.(int_range 0 3)
    (fun n -> P.to_int (P.of_int n) = n)

(* --- Selector --------------------------------------------------------- *)

let test_selector_encode () =
  let s = Sel.make ~table:Sel.Ldt ~rpl:P.R3 5 in
  check_int "encoding" ((5 lsl 3) lor 0b100 lor 3) (Sel.encode s);
  check_bool "null" true (Sel.is_null Sel.null);
  check_bool "not null" false (Sel.is_null s)

let test_selector_bad_index () =
  Alcotest.check_raises "index too large"
    (Invalid_argument "Selector.make: index 8192 out of range") (fun () ->
      ignore (Sel.make ~rpl:P.R0 8192))

let prop_selector_roundtrip =
  QCheck.Test.make ~name:"selector encode/decode roundtrip"
    QCheck.(pair (int_range 0 0x1FFF) (pair bool (int_range 0 3)))
    (fun (index, (ldt, rpl)) ->
      let table = if ldt then Sel.Ldt else Sel.Gdt in
      let s = Sel.make ~table ~rpl:(P.of_int rpl) index in
      Sel.equal s (Sel.decode (Sel.encode s)))

(* --- Descriptor ------------------------------------------------------- *)

let test_descriptor_limit_check () =
  let d = Desc.data ~base:0 ~limit:0xFFF ~dpl:P.R3 () in
  check_bool "inside" true (Desc.offset_valid d ~offset:0xFFC ~size:4);
  check_bool "straddle" false (Desc.offset_valid d ~offset:0xFFD ~size:4);
  check_bool "zero" true (Desc.offset_valid d ~offset:0 ~size:1);
  check_bool "gate has no range" false
    (Desc.offset_valid
       (Desc.call_gate ~dpl:P.R3 ~target:(Sel.make ~rpl:P.R0 1) ~entry:0 ())
       ~offset:0 ~size:1)

let test_descriptor_expand_down () =
  let d = Desc.data ~expand_down:true ~base:0 ~limit:0xFFF ~dpl:P.R0 () in
  check_bool "below limit invalid" false (Desc.offset_valid d ~offset:0x100 ~size:4);
  check_bool "above limit valid" true (Desc.offset_valid d ~offset:0x2000 ~size:4)

let test_descriptor_predicates () =
  let c = Desc.code ~base:0 ~limit:100 ~dpl:P.R0 () in
  let d = Desc.data ~base:0 ~limit:100 ~dpl:P.R0 () in
  let g = Desc.call_gate ~dpl:P.R3 ~target:(Sel.make ~rpl:P.R0 1) ~entry:4 () in
  check_bool "code" true (Desc.is_code c && not (Desc.is_code d));
  check_bool "data" true (Desc.is_data d && not (Desc.is_data c));
  check_bool "gate" true (Desc.is_gate g);
  check_bool "code readable" true (Desc.is_readable c);
  check_bool "code not writable" false (Desc.is_writable c);
  check_bool "data writable" true (Desc.is_writable d)

let test_descriptor_encode_bits () =
  let d = Desc.code ~base:0x12345678 ~limit:0xFFFFF ~dpl:P.R2 () in
  let lo, hi = Desc.encode d in
  check_int "base low half in lo" 0x5678 (lo lsr 16);
  check_int "base 23:16" 0x34 (hi land 0xFF);
  check_int "base 31:24" 0x12 ((hi lsr 24) land 0xFF);
  check_int "dpl" 2 ((hi lsr 13) land 0b11);
  check_int "present" 1 ((hi lsr 15) land 1)

(* --- Descriptor tables ------------------------------------------------ *)

let test_desc_table_basics () =
  let gdt = DT.gdt () in
  let idx = DT.alloc gdt (Desc.data ~base:0 ~limit:10 ~dpl:P.R0 ()) in
  check_int "first alloc skips null slot" 1 idx;
  let sel = Sel.make ~rpl:P.R0 idx in
  check_bool "lookup finds it" true (Desc.is_data (DT.lookup gdt sel));
  expect_fault "null selector" (fun () -> DT.lookup gdt Sel.null);
  expect_fault "missing descriptor" (fun () ->
      DT.lookup gdt (Sel.make ~rpl:P.R0 7));
  DT.set gdt 3 (Desc.not_present (Desc.data ~base:0 ~limit:1 ~dpl:P.R0 ()));
  expect_fault "not present" (fun () -> DT.lookup gdt (Sel.make ~rpl:P.R0 3))

let test_desc_table_gdt_slot0 () =
  let gdt = DT.gdt () in
  Alcotest.check_raises "slot 0 reserved"
    (Invalid_argument "Desc_table.set: GDT entry 0 is the null descriptor")
    (fun () -> DT.set gdt 0 (Desc.data ~base:0 ~limit:1 ~dpl:P.R0 ()))

let test_desc_table_growth () =
  let ldt = DT.ldt ~capacity:2 "t" in
  for _ = 1 to 40 do
    ignore (DT.alloc ldt (Desc.data ~base:0 ~limit:1 ~dpl:P.R3 ()))
  done;
  check_bool "grew" true (DT.capacity ldt >= 40)

let test_view_resolution () =
  let gdt = DT.gdt () in
  let ldt = DT.ldt "t" in
  DT.set gdt 1 (Desc.data ~base:0 ~limit:1 ~dpl:P.R0 ());
  DT.set ldt 0 (Desc.code ~base:0 ~limit:1 ~dpl:P.R3 ());
  let v = DT.view ~ldt gdt in
  check_bool "gdt side" true (Desc.is_data (DT.resolve v (Sel.make ~rpl:P.R0 1)));
  check_bool "ldt side" true
    (Desc.is_code (DT.resolve v (Sel.make ~table:Sel.Ldt ~rpl:P.R3 0)));
  let no_ldt = DT.view gdt in
  expect_fault "ldt selector without ldt" (fun () ->
      DT.resolve no_ldt (Sel.make ~table:Sel.Ldt ~rpl:P.R3 0))

(* --- Physical memory -------------------------------------------------- *)

let test_phys_mem_rw () =
  let m = PM.create () in
  let pfn = PM.alloc_frame m in
  let base = pfn * PM.page_size in
  PM.write_u32 m base 0xDEADBEEF;
  check_int "u32 roundtrip" 0xDEADBEEF (PM.read_u32 m base);
  check_int "little endian low byte" 0xEF (PM.read_u8 m base);
  check_int "little endian high byte" 0xDE (PM.read_u8 m (base + 3));
  PM.write_u16 m (base + 8) 0x1234;
  check_int "u16" 0x1234 (PM.read_u16 m (base + 8))

let test_phys_mem_straddle () =
  let m = PM.create () in
  let a = PM.alloc_frame m in
  let b = PM.alloc_frame m in
  check_int "frames contiguous" (a + 1) b;
  let addr = ((a + 1) * PM.page_size) - 2 in
  PM.write_u32 m addr 0xCAFEBABE;
  check_int "straddling u32" 0xCAFEBABE (PM.read_u32 m addr)

let test_phys_mem_unbacked () =
  let m = PM.create () in
  match PM.read_u8 m 0x7777000 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_phys_u32_roundtrip =
  QCheck.Test.make ~name:"phys u32 write/read roundtrip"
    QCheck.(pair (int_range 0 4092) (int_bound 0xFFFFFFF))
    (fun (off, v) ->
      let m = PM.create () in
      let pfn = PM.alloc_frame m in
      let addr = (pfn * PM.page_size) + off in
      PM.write_u32 m addr v;
      PM.read_u32 m addr = v)

(* --- Paging ------------------------------------------------------------ *)

let test_paging_map_unmap () =
  let d = Pg.create () in
  Pg.map d ~vpn:0x1234 ~pfn:0x55 ~writable:true ~user:false;
  (match Pg.lookup d ~vpn:0x1234 with
  | Some pte ->
      check_int "pfn" 0x55 pte.Pg.pfn;
      check_bool "writable" true pte.Pg.writable;
      check_bool "supervisor" false pte.Pg.user
  | None -> Alcotest.fail "mapping missing");
  check_int "mapped count" 1 (Pg.mapped_pages d);
  check_bool "unmap returns frame" true (Pg.unmap d ~vpn:0x1234 = Some 0x55);
  check_bool "gone" true (Pg.lookup d ~vpn:0x1234 = None);
  check_int "count zero" 0 (Pg.mapped_pages d)

let test_paging_set_user () =
  let d = Pg.create () in
  Pg.map d ~vpn:7 ~pfn:1 ~writable:true ~user:true;
  check_bool "flip to supervisor" true (Pg.set_user d ~vpn:7 false);
  (match Pg.lookup d ~vpn:7 with
  | Some pte -> check_bool "now supervisor" false pte.Pg.user
  | None -> Alcotest.fail "missing");
  check_bool "missing page returns false" false (Pg.set_user d ~vpn:9 false)

let test_paging_clone () =
  let d = Pg.create () in
  Pg.map d ~vpn:1 ~pfn:10 ~writable:true ~user:false;
  Pg.map d ~vpn:2 ~pfn:11 ~writable:false ~user:true;
  let c = Pg.clone d in
  check_int "clone count" 2 (Pg.mapped_pages c);
  (match Pg.lookup c ~vpn:1 with
  | Some pte -> check_bool "ppl inherited" false pte.Pg.user
  | None -> Alcotest.fail "clone lost a page");
  ignore (Pg.set_user c ~vpn:1 true);
  match Pg.lookup d ~vpn:1 with
  | Some pte -> check_bool "original untouched" false pte.Pg.user
  | None -> Alcotest.fail "original lost a page"

(* --- TLB ---------------------------------------------------------------- *)

let test_tlb_basics () =
  let t = X86.Tlb.create ~sets:4 () in
  check_bool "cold miss" true (X86.Tlb.lookup t ~vpn:5 = None);
  X86.Tlb.insert t ~vpn:5 ~pfn:50 ~user:true ~writable:false;
  (match X86.Tlb.lookup t ~vpn:5 with
  | Some e ->
      check_int "pfn cached" 50 e.X86.Tlb.e_pfn;
      check_bool "user bit cached" true e.X86.Tlb.e_user
  | None -> Alcotest.fail "hit expected");
  X86.Tlb.insert t ~vpn:9 ~pfn:90 ~user:false ~writable:true;
  check_bool "conflict evicted" true (X86.Tlb.lookup t ~vpn:5 = None);
  X86.Tlb.flush t;
  check_bool "flush clears" true (X86.Tlb.lookup t ~vpn:9 = None);
  let s = X86.Tlb.stats t in
  check_int "flushes" 1 s.X86.Tlb.tlb_flushes

let test_tlb_invalidate () =
  let t = X86.Tlb.create () in
  X86.Tlb.insert t ~vpn:3 ~pfn:30 ~user:true ~writable:true;
  X86.Tlb.invalidate t ~vpn:3;
  check_bool "invalidated" true (X86.Tlb.lookup t ~vpn:3 = None)

(* --- MMU ---------------------------------------------------------------- *)

let mmu_world () =
  let phys = PM.create () in
  let dir = Pg.create () in
  let mmu = X86.Mmu.create phys ~dir in
  (phys, dir, mmu)

let test_mmu_translate_ok () =
  let phys, dir, mmu = mmu_world () in
  let pfn = PM.alloc_frame phys in
  Pg.map dir ~vpn:0x10 ~pfn ~writable:true ~user:true;
  let tr = X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read ((0x10 * 4096) + 12) in
  check_int "physical" ((pfn * 4096) + 12) tr.X86.Mmu.phys_addr;
  check_bool "first access walks" true tr.X86.Mmu.walked;
  let tr2 = X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read (0x10 * 4096) in
  check_bool "second access hits TLB" false tr2.X86.Mmu.walked

let test_mmu_user_supervisor () =
  let phys, dir, mmu = mmu_world () in
  let pfn = PM.alloc_frame phys in
  Pg.map dir ~vpn:1 ~pfn ~writable:true ~user:false;
  List.iter
    (fun cpl -> ignore (X86.Mmu.translate mmu ~cpl ~access:F.Write 4096))
    [ P.R0; P.R1; P.R2 ];
  expect_fault "R3 blocked" (fun () ->
      X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read 4096)

let test_mmu_readonly () =
  let phys, dir, mmu = mmu_world () in
  let pfn = PM.alloc_frame phys in
  Pg.map dir ~vpn:2 ~pfn ~writable:false ~user:true;
  ignore (X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read 8192);
  expect_fault "user write to ro page" (fun () ->
      X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Write 8192);
  (* WP=0: supervisor writes bypass the read-only bit (Linux 2.0 era) *)
  ignore (X86.Mmu.translate mmu ~cpl:P.R0 ~access:F.Write 8192)

let test_mmu_not_present () =
  let _, _, mmu = mmu_world () in
  expect_fault "unmapped" (fun () ->
      X86.Mmu.translate mmu ~cpl:P.R0 ~access:F.Read 0x123456)

let test_mmu_cr3_flushes () =
  let phys, dir, mmu = mmu_world () in
  let pfn = PM.alloc_frame phys in
  Pg.map dir ~vpn:1 ~pfn ~writable:true ~user:true;
  ignore (X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read 4096);
  let dir2 = Pg.create () in
  X86.Mmu.load_cr3 mmu dir2;
  expect_fault "stale mapping gone after CR3 load" (fun () ->
      X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read 4096)

(* --- MMU bulk accesses & corrupt-address guard -------------------------- *)

(* [npages] contiguous writable user pages starting at vpn 0x20. *)
let bulk_base = 0x20 * 4096

let bulk_world npages =
  let phys, dir, mmu = mmu_world () in
  for i = 0 to npages - 1 do
    let pfn = PM.alloc_frame phys in
    Pg.map dir ~vpn:(0x20 + i) ~pfn ~writable:true ~user:true
  done;
  (phys, dir, mmu)

let test_mmu_negative_linear () =
  let _, _, mmu = mmu_world () in
  expect_fault "negative linear faults cleanly" (fun () ->
      X86.Mmu.translate mmu ~cpl:P.R3 ~access:F.Read (-4096));
  expect_fault "past 4 GByte faults cleanly" (fun () ->
      X86.Mmu.translate mmu ~cpl:P.R0 ~access:F.Read (1 lsl 33));
  (* the TLB itself must index, and miss, on a corrupt VPN *)
  let t = X86.Tlb.create () in
  check_bool "tlb lookup on negative vpn" true
    (X86.Tlb.lookup t ~vpn:(-5) = None);
  check_bool "tlb lookup on min_int vpn" true
    (X86.Tlb.lookup t ~vpn:min_int = None)

let test_mmu_bulk_translates_per_page () =
  let _, _, mmu = bulk_world 3 in
  let len = 3 * 4096 in
  let _ = X86.Mmu.read_bytes mmu ~cpl:P.R3 bulk_base len in
  check_int "one walk per page, not per byte" 3 (X86.Mmu.page_walks mmu);
  let s0 = (X86.Tlb.stats (X86.Mmu.tlb mmu)).X86.Tlb.tlb_hits in
  let _ = X86.Mmu.read_bytes mmu ~cpl:P.R3 bulk_base len in
  check_int "warm pass: one TLB hit per page"
    (s0 + 3)
    (X86.Tlb.stats (X86.Mmu.tlb mmu)).X86.Tlb.tlb_hits

let test_mmu_bulk_fault_prefix () =
  let phys, dir, mmu = mmu_world () in
  let pfn = PM.alloc_frame phys in
  Pg.map dir ~vpn:0x30 ~pfn ~writable:true ~user:true;
  (* vpn 0x31 deliberately unmapped *)
  let addr = (0x30 * 4096) + 4090 in
  expect_fault "write straddling into unmapped page" (fun () ->
      X86.Mmu.write_bytes mmu ~cpl:P.R3 addr (Bytes.make 16 'z'));
  (* per-byte semantics preserved: the first page's bytes landed *)
  check_int "bytes before the fault committed" (Char.code 'z')
    (X86.Mmu.read_u8 mmu ~cpl:P.R3 addr);
  check_int "last mapped byte committed" (Char.code 'z')
    (X86.Mmu.read_u8 mmu ~cpl:P.R3 ((0x30 * 4096) + 4095))

let prop_mmu_u32_straddle =
  QCheck.Test.make ~name:"u32 across pages = byte-composed" ~count:200
    QCheck.(pair (int_bound ((3 * 4096) - 4)) (int_bound 0xFFFFFFFF))
    (fun (off, v) ->
      let _, _, mmu = bulk_world 4 in
      let cpl = P.R3 in
      let addr = bulk_base + off in
      X86.Mmu.write_u32 mmu ~cpl addr v;
      let byte i = X86.Mmu.read_u8 mmu ~cpl (addr + i) in
      let composed =
        byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)
      in
      X86.Mmu.read_u32 mmu ~cpl addr = v && composed = v)

let prop_mmu_bulk_roundtrip =
  QCheck.Test.make ~name:"bulk round-trip across page boundaries" ~count:200
    QCheck.(pair (int_bound (2 * 4096)) (int_bound ((2 * 4096) - 1)))
    (fun (off, len) ->
      let _, _, mmu = bulk_world 5 in
      let cpl = P.R3 in
      let src = Bytes.init len (fun i -> Char.chr ((i * 7) land 0xFF)) in
      X86.Mmu.write_bytes mmu ~cpl (bulk_base + off) src;
      Bytes.equal src (X86.Mmu.read_bytes mmu ~cpl (bulk_base + off) len))

(* Monotonic counters never go backwards, whatever the access mix. *)
let prop_counters_monotonic =
  QCheck.Test.make ~name:"counters monotone under random accesses" ~count:50
    QCheck.(small_list (pair bool (int_bound ((4 * 4096) - 4))))
    (fun ops ->
      let before = Obs.Counters.snapshot () in
      let _, _, mmu = bulk_world 4 in
      List.iter
        (fun (write, off) ->
          let addr = bulk_base + off in
          if write then X86.Mmu.write_u32 mmu ~cpl:P.R3 addr off
          else ignore (X86.Mmu.read_u32 mmu ~cpl:P.R3 addr))
        ops;
      List.for_all
        (fun c ->
          Obs.Counters.kind c = Obs.Counters.Gauge
          || Obs.Counters.value c
             >= (try List.assoc (Obs.Counters.name c) before
                 with Not_found -> 0))
        (Obs.Counters.all ()))

(* --- Segmentation ------------------------------------------------------- *)

let seg_world () =
  let gdt = DT.gdt () in
  DT.set gdt 1 (Desc.code ~base:0 ~limit:0xFFFF ~dpl:P.R0 ());
  DT.set gdt 2 (Desc.data ~base:0 ~limit:0xFFFF ~dpl:P.R0 ());
  DT.set gdt 3 (Desc.code ~base:0 ~limit:0xFFFF ~dpl:P.R3 ());
  DT.set gdt 4 (Desc.data ~base:0x1000 ~limit:0xFFF ~dpl:P.R3 ());
  DT.view gdt

let test_seg_data_load_privilege () =
  let v = seg_world () in
  ignore (Seg.load_data v ~cpl:P.R3 (Sel.make ~rpl:P.R3 4));
  expect_fault "kernel data from CPL3" (fun () ->
      Seg.load_data v ~cpl:P.R3 (Sel.make ~rpl:P.R3 2));
  expect_fault "rpl weakening" (fun () ->
      Seg.load_data v ~cpl:P.R0 (Sel.make ~rpl:P.R3 2));
  ignore (Seg.load_data v ~cpl:P.R0 (Sel.make ~rpl:P.R0 2))

let test_seg_stack_load () =
  let v = seg_world () in
  expect_fault "stack DPL must equal CPL" (fun () ->
      Seg.load_stack v ~cpl:P.R0 (Sel.make ~rpl:P.R0 4));
  ignore (Seg.load_stack v ~cpl:P.R0 (Sel.make ~rpl:P.R0 2));
  expect_fault "stack must be writable data" (fun () ->
      Seg.load_stack v ~cpl:P.R0 (Sel.make ~rpl:P.R0 1))

let test_seg_linear_and_limits () =
  let v = seg_world () in
  let d = Seg.load_data v ~cpl:P.R3 (Sel.make ~rpl:P.R3 4) in
  check_int "base applied" (0x1000 + 0x10)
    (Seg.linear d ~offset:0x10 ~size:4 ~access:F.Read);
  expect_fault "limit check" (fun () ->
      Seg.linear d ~offset:0xFFE ~size:4 ~access:F.Read);
  let c = Seg.load_code v ~new_cpl:P.R0 (Sel.make ~rpl:P.R0 1) in
  expect_fault "write through code segment" (fun () ->
      Seg.linear c ~offset:0 ~size:4 ~access:F.Write)

(* --- Layout -------------------------------------------------------------- *)

let test_layout_helpers () =
  check_int "align down" 0x1000 (X86.Layout.page_align_down 0x1FFF);
  check_int "align up" 0x2000 (X86.Layout.page_align_up 0x1001);
  check_int "pages spanning" 2
    (X86.Layout.pages_spanning ~start:0xFF0 ~len:0x20);
  check_int "pages empty" 0 (X86.Layout.pages_spanning ~start:0 ~len:0);
  check_bool "user addr" true (X86.Layout.is_user_address 0x1000);
  check_bool "kernel addr" true (X86.Layout.is_kernel_address (3 * X86.Layout.gb));
  check_bool "boundary" false (X86.Layout.is_user_address (3 * X86.Layout.gb))

let prop_align =
  QCheck.Test.make ~name:"page alignment properties"
    QCheck.(int_bound 0xFFFFFF)
    (fun a ->
      let down = X86.Layout.page_align_down a in
      let up = X86.Layout.page_align_up a in
      down <= a && a <= up
      && down mod 4096 = 0
      && up mod 4096 = 0
      && up - down < 8192)

let () =
  Alcotest.run "x86"
    [
      ( "privilege",
        [
          Alcotest.test_case "ring ordering" `Quick test_privilege_order;
          Alcotest.test_case "default page levels" `Quick test_default_page_levels;
          Alcotest.test_case "page access matrix" `Quick test_page_access_matrix;
          QCheck_alcotest.to_alcotest prop_privilege_roundtrip;
        ] );
      ( "selector",
        [
          Alcotest.test_case "encoding" `Quick test_selector_encode;
          Alcotest.test_case "bad index" `Quick test_selector_bad_index;
          QCheck_alcotest.to_alcotest prop_selector_roundtrip;
        ] );
      ( "descriptor",
        [
          Alcotest.test_case "limit checks" `Quick test_descriptor_limit_check;
          Alcotest.test_case "expand down" `Quick test_descriptor_expand_down;
          Alcotest.test_case "predicates" `Quick test_descriptor_predicates;
          Alcotest.test_case "hardware encoding" `Quick test_descriptor_encode_bits;
        ] );
      ( "desc-table",
        [
          Alcotest.test_case "alloc and lookup faults" `Quick test_desc_table_basics;
          Alcotest.test_case "gdt slot 0" `Quick test_desc_table_gdt_slot0;
          Alcotest.test_case "growth" `Quick test_desc_table_growth;
          Alcotest.test_case "gdt/ldt view" `Quick test_view_resolution;
        ] );
      ( "phys-mem",
        [
          Alcotest.test_case "read/write" `Quick test_phys_mem_rw;
          Alcotest.test_case "frame straddling" `Quick test_phys_mem_straddle;
          Alcotest.test_case "unbacked frame" `Quick test_phys_mem_unbacked;
          QCheck_alcotest.to_alcotest prop_phys_u32_roundtrip;
        ] );
      ( "paging",
        [
          Alcotest.test_case "map/unmap" `Quick test_paging_map_unmap;
          Alcotest.test_case "PPL marking" `Quick test_paging_set_user;
          Alcotest.test_case "clone inherits PPL" `Quick test_paging_clone;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss/flush" `Quick test_tlb_basics;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "translate + TLB fill" `Quick test_mmu_translate_ok;
          Alcotest.test_case "user/supervisor check" `Quick test_mmu_user_supervisor;
          Alcotest.test_case "read-only pages (WP=0)" `Quick test_mmu_readonly;
          Alcotest.test_case "not present" `Quick test_mmu_not_present;
          Alcotest.test_case "CR3 load flushes TLB" `Quick test_mmu_cr3_flushes;
        ] );
      ( "mmu-bulk",
        [
          Alcotest.test_case "corrupt linear faults cleanly" `Quick
            test_mmu_negative_linear;
          Alcotest.test_case "translations per page" `Quick
            test_mmu_bulk_translates_per_page;
          Alcotest.test_case "fault-prefix semantics" `Quick
            test_mmu_bulk_fault_prefix;
          QCheck_alcotest.to_alcotest prop_mmu_u32_straddle;
          QCheck_alcotest.to_alcotest prop_mmu_bulk_roundtrip;
          QCheck_alcotest.to_alcotest prop_counters_monotonic;
        ] );
      ( "segmentation",
        [
          Alcotest.test_case "data load privilege" `Quick test_seg_data_load_privilege;
          Alcotest.test_case "stack load rules" `Quick test_seg_stack_load;
          Alcotest.test_case "linear + limit + rw" `Quick test_seg_linear_and_limits;
        ] );
      ( "layout",
        [
          Alcotest.test_case "helpers" `Quick test_layout_helpers;
          QCheck_alcotest.to_alcotest prop_align;
        ] );
    ]
