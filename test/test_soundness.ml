(* The soundness oracle tested against itself: a clean batch of
   specimens must produce no violations, a deliberately lying
   classification table must be caught dynamically, and a lying
   elision predicate must be caught by the static cross-check.
   The second half is what makes the oracle's green run meaningful —
   an oracle that cannot detect a planted lie proves nothing. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let i x = Asm.I x

(* --- specimens are replayable ----------------------------------------- *)

let test_generator_deterministic () =
  let draw () =
    let st = Random.State.make [| 0x5eed; 42; 7 |] in
    Soundness.gen_program st
  in
  check_bool "same (seed, specimen) draws the same program" true
    (draw () = draw ())

(* --- a clean batch runs violation-free --------------------------------- *)

let test_oracle_smoke () =
  (* a clean batch writes no artifacts, so pointing json_dir at the
     system temp directory only matters if this test regresses *)
  let dir = Filename.get_temp_dir_name () in
  let s = Soundness.run ~json_dir:dir ~count:40 ~seed:0xA11D () in
  check_int "no violations" 0 s.Soundness.s_violations;
  check_int "no artifacts" 0 (List.length s.Soundness.s_artifacts);
  check_bool "specimens executed" true (s.Soundness.s_runs > 0);
  check_bool "accesses observed" true (s.Soundness.s_accesses > 0);
  check_bool "some accesses proved" true (s.Soundness.s_proved > 0);
  check_bool "per-specimen latencies recorded" true
    (List.length s.Soundness.s_spec_verify_us = s.Soundness.s_specimens)

(* --- the oracle catches a lying verifier ------------------------------- *)

let lie_prog =
  [
    Asm.L "entry";
    i (Instr.Mov (Operand.Reg Reg.EAX, Operand.Imm 0x9000));
    i (Instr.Mov (Operand.deref Reg.EAX, Operand.Reg Reg.EBX)); (* 1 *)
    i Instr.Hlt;
  ]

let lie_report () =
  Verify.verify ~org:Soundness.org ~entries:[ "entry" ]
    ~region:(0, Soundness.region_hi) ~lint_privileged:false ~name:"lie"
    lie_prog

let test_planted_lie_detected () =
  let report = lie_report () in
  let asm = Asm.assemble ~org:Soundness.org lie_prog in
  (* the honest table classifies the wild store Oob and the run is
     clean: the store faults, as the verifier predicted *)
  let honest = Soundness.static_table report in
  List.iter
    (fun e ->
      let r = Soundness.execute e asm ~static:honest ~elide:(fun _ -> false) ~fuel:100 in
      check_int "honest table: no violations" 0 (List.length r.Soundness.x_violations))
    [ Cpu.Interp; Cpu.Blocks ];
  (* plant the lie: claim the store at instr 1 is Proved; both engines
     must report the contract breach *)
  List.iter
    (fun e ->
      let static = Soundness.static_table report in
      Hashtbl.replace static (1, true, 4, false) Verify.Proved;
      let r = Soundness.execute e asm ~static ~elide:(fun _ -> false) ~fuel:100 in
      check_bool "planted Proved lie detected" true
        (r.Soundness.x_violations <> []))
    [ Cpu.Interp; Cpu.Blocks ]

let test_elision_lie_detected () =
  let report = lie_report () in
  (* honest elision: nothing elidable in a program with a wild store *)
  check_int "honest elision is consistent" 0
    (List.length (Soundness.elision_mismatches report (fun _ -> false)));
  (* lying elision: dropping the guard on the Oob store must be flagged
     by the static cross-check *)
  check_bool "elide-everything lie flagged" true
    (Soundness.elision_mismatches report (fun _ -> true) <> [])

let () =
  Alcotest.run "soundness"
    [
      ( "oracle",
        [
          Alcotest.test_case "generator is deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "clean batch has no violations" `Quick
            test_oracle_smoke;
          Alcotest.test_case "planted Proved lie detected" `Quick
            test_planted_lie_detected;
          Alcotest.test_case "elision lie detected statically" `Quick
            test_elision_lie_detected;
        ] );
    ]
