(* Tests for the protection-state auditor: clean worlds audit to zero
   findings, every injected misconfiguration is cited by exactly its
   intended invariant, the reachability proof holds in clean states
   and catches planted rogue gates, random single-field corruption
   never slips through, incremental re-audit skips unchanged state,
   and the Reject policy refuses to continue. *)

module AS = Audit_scenarios
module E = Audit.Engine
module F = Audit.Finding

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ids_of (r : E.report) =
  List.sort_uniq String.compare
    (List.map (fun f -> f.F.f_id) r.E.rp_findings)

let pp_findings (r : E.report) =
  String.concat "; "
    (List.map (fun f -> Fmt.str "%a" F.pp f) r.E.rp_findings)

(* --- clean scenarios ------------------------------------------------- *)

let test_clean_scenarios () =
  List.iter
    (fun (name, build) ->
      let kernel = build () in
      let r = E.run (Paudit.capture kernel) in
      Alcotest.(check string)
        (name ^ " audits clean: " ^ pp_findings r)
        "" (pp_findings r);
      check_int (name ^ " checks the whole catalogue")
        (List.length Audit.Invariant.catalogue + 1)
        r.E.rp_checked)
    AS.clean_scenarios

(* --- misconfiguration catalogue --------------------------------------- *)

let test_misconfigs () =
  check_bool "catalogue has at least 12 entries" true
    (List.length AS.misconfigs >= 12);
  List.iter
    (fun (m : AS.misconfig) ->
      let world = AS.build () in
      m.AS.mc_apply world;
      let r = AS.audit_world world in
      check_bool (m.AS.mc_name ^ " is flagged") true (r.E.rp_findings <> []);
      Alcotest.(check (list string))
        (m.AS.mc_name ^ " cites only " ^ m.AS.mc_id ^ ": " ^ pp_findings r)
        [ m.AS.mc_id ] (ids_of r))
    AS.misconfigs

(* --- reachability ------------------------------------------------------ *)

let test_reach_clean () =
  let world = AS.build () in
  let r = AS.audit_world world in
  let reach = r.E.rp_reach in
  check_int "no unaudited path into ring 0" 0
    (List.length reach.Audit.Reach.r_violations);
  (* the cut is non-vacuous: syscall vector, extension return gate,
     kernel service, AppCallGate and app service are all audited *)
  check_bool "at least five audited gate sites" true
    (List.length reach.Audit.Reach.r_audited >= 5);
  check_bool "graph has nodes" true (reach.Audit.Reach.r_nodes > 0);
  check_bool "graph has edges" true (reach.Audit.Reach.r_edges > 0)

let test_reach_rogue_gate () =
  let world = AS.build () in
  let gdt = Kernel.gdt world.AS.kernel in
  let slot =
    X86.Desc_table.alloc gdt
      (X86.Descriptor.call_gate ~dpl:X86.Privilege.R3
         ~target:(Kernel.kernel_code_selector world.AS.kernel)
         ~entry:(Kernel.syscall_entry_offset world.AS.kernel)
         ())
  in
  let r = AS.audit_world world in
  Alcotest.(check (list string)) "rogue gate yields REACH-01" [ "REACH-01" ]
    (ids_of r);
  let reach = r.E.rp_reach in
  check_bool "violations recorded" true
    (reach.Audit.Reach.r_violations <> []);
  (* every counterexample path ends in ring 0 through the rogue slot *)
  List.iter
    (fun (v : Audit.Reach.violation) ->
      match List.rev v.Audit.Reach.v_path with
      | last :: _ ->
          check_int "path lands in ring 0" 0 last.Audit.Reach.e_to.Audit.Reach.n_ring;
          check_bool "path enters through the rogue slot" true
            (last.Audit.Reach.e_site = Some (Audit.Reach.Ggdt slot))
      | [] -> Alcotest.fail "empty violation path")
    reach.Audit.Reach.r_violations;
  (* the start of each path is extension-privileged code, not kernel *)
  List.iter
    (fun (v : Audit.Reach.violation) ->
      check_bool "violation starts at SPL 3 or SPL 1" true
        (let ring = v.Audit.Reach.v_start.Audit.Reach.n_ring in
         ring = 3 || ring = 1))
    reach.Audit.Reach.r_violations

(* --- random single-field corruption ------------------------------------ *)

(* A corruption plan: which descriptor field to flip, chosen randomly.
   Whatever the dice say, the auditor must produce at least one
   finding — the catalogue has no blind spots among these families. *)
type corruption =
  | Boot_dpl of int * int  (* GDT slot 1-4, new DPL 1-2 *)
  | Boot_limit of int * int  (* GDT slot 1-4, extra pages 1-4 *)
  | Ext_dpl of bool * int  (* cs? / new DPL of the extension segment *)
  | Page_expose  (* U/S flip on a supervisor private page *)
  | Gate_retarget of int  (* ksvc gate entry skew *)
  | Tss_selector  (* ring-2 stack selector swapped for user data *)

let corruption_gen =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun s d -> Boot_dpl (s, d)) (int_range 1 4) (int_range 1 2);
      map2 (fun s p -> Boot_limit (s, p)) (int_range 1 4) (int_range 1 4);
      map2 (fun cs d -> Ext_dpl (cs, d)) bool (int_range 0 3);
      return Page_expose;
      map (fun skew -> Gate_retarget (4 * (1 + skew))) (int_range 0 7);
      return Tss_selector;
    ]

let ring_of = function
  | 0 -> X86.Privilege.R0
  | 1 -> X86.Privilege.R1
  | 2 -> X86.Privilege.R2
  | _ -> X86.Privilege.R3

let apply_corruption (world : AS.world) c =
  let gdt = Kernel.gdt world.AS.kernel in
  let module Desc = X86.Descriptor in
  let module DT = X86.Desc_table in
  let redpl slot dpl =
    match DT.get gdt slot with
    | Some d -> DT.set gdt slot { d with Desc.dpl }
    | None -> Alcotest.fail "corruption: empty GDT slot"
  in
  match c with
  | Boot_dpl (slot, d) -> redpl slot (ring_of d)
  | Boot_limit (slot, pages) -> (
      match DT.get gdt slot with
      | Some d ->
          DT.set gdt slot
            { d with Desc.limit = d.Desc.limit + (pages * X86.Layout.page_size) }
      | None -> Alcotest.fail "corruption: empty GDT slot")
  | Ext_dpl (cs, d) ->
      let rs =
        List.find
          (fun (rs : Audit.Snapshot.registered_segment) ->
            not rs.Audit.Snapshot.rs_dead)
          (Paudit.segments world.AS.kernel)
      in
      let slot =
        if cs then rs.Audit.Snapshot.rs_cs else rs.Audit.Snapshot.rs_ds
      in
      redpl slot (ring_of d)
  | Page_expose ->
      let tk = User_ext.task world.AS.app in
      let dir = Address_space.directory tk.Task.asp in
      let areas = Address_space.areas tk.Task.asp in
      let a =
        List.find (fun a -> a.Vm_area.label = "palladium.data") areas
      in
      ignore
        (X86.Paging.set_user dir ~vpn:(a.Vm_area.va_start / X86.Layout.page_size)
           true)
  | Gate_retarget skew -> (
      let rs =
        List.find
          (fun (rs : Audit.Snapshot.registered_segment) ->
            not rs.Audit.Snapshot.rs_dead)
          (Paudit.segments world.AS.kernel)
      in
      match rs.Audit.Snapshot.rs_gates with
      | (slot, entry) :: _ ->
          DT.set gdt slot
            (Desc.call_gate ~dpl:X86.Privilege.R1
               ~target:(Kernel.kernel_code_selector world.AS.kernel)
               ~entry:(entry + skew) ())
      | [] -> Alcotest.fail "corruption: no ksvc gate")
  | Tss_selector -> (
      let tk = User_ext.task world.AS.app in
      match Tss.stack_slot tk.Task.tss X86.Privilege.R2 with
      | Some s ->
          Tss.set_stack tk.Task.tss X86.Privilege.R2
            {
              s with
              Tss.stack_selector = Kernel.user_data_selector world.AS.kernel;
            }
      | None -> Alcotest.fail "corruption: no ring-2 stack")

(* Ext_dpl can pick the legitimate DPL 1 — then nothing changed and a
   clean audit is the right answer.  Every other roll must be caught. *)
let is_noop = function Ext_dpl (_, 1) -> true | _ -> false

let prop_corruption_flagged =
  QCheck.Test.make ~count:10
    ~name:"random descriptor corruption always flagged"
    (QCheck.make corruption_gen ~print:(fun c ->
         match c with
         | Boot_dpl (s, d) -> Printf.sprintf "Boot_dpl(%d,%d)" s d
         | Boot_limit (s, p) -> Printf.sprintf "Boot_limit(%d,%d)" s p
         | Ext_dpl (cs, d) -> Printf.sprintf "Ext_dpl(%b,%d)" cs d
         | Page_expose -> "Page_expose"
         | Gate_retarget skew -> Printf.sprintf "Gate_retarget(%d)" skew
         | Tss_selector -> "Tss_selector"))
    (fun c ->
      let world = AS.build () in
      apply_corruption world c;
      let r = AS.audit_world world in
      if is_noop c then r.E.rp_findings = [] else r.E.rp_findings <> [])

(* --- incremental re-audit ---------------------------------------------- *)

let counter name snap = match List.assoc_opt name snap with Some v -> v | None -> 0

let test_incremental_skip () =
  let world = AS.build () in
  let kernel = world.AS.kernel in
  (* prime the generation cache *)
  Paudit.maybe_audit ~context:"test" kernel;
  let before = Obs.Counters.snapshot () in
  Paudit.maybe_audit ~context:"test" kernel;
  Paudit.maybe_audit ~context:"test" kernel;
  let after = Obs.Counters.snapshot () in
  check_int "unchanged state skips" 2
    (counter "audit.skipped" after - counter "audit.skipped" before);
  check_int "no full audit ran" 0
    (counter "audit.pass" after - counter "audit.pass" before);
  (* any descriptor write invalidates the generation *)
  let gdt = Kernel.gdt kernel in
  let slot =
    X86.Desc_table.alloc gdt
      (X86.Descriptor.data ~base:0 ~limit:X86.Layout.user_limit
         ~dpl:X86.Privilege.R3 ())
  in
  X86.Desc_table.clear gdt slot;
  Paudit.maybe_audit ~context:"test" kernel;
  let final = Obs.Counters.snapshot () in
  check_int "mutation forces a re-audit" 1
    (counter "audit.pass" final - counter "audit.pass" after)

(* --- policy ------------------------------------------------------------ *)

let with_policy p f =
  let saved = Pconfig.audit_policy () in
  Pconfig.set_audit_policy p;
  Fun.protect ~finally:(fun () -> Pconfig.set_audit_policy saved) f

let test_reject_policy () =
  with_policy E.Reject (fun () ->
      (* clean builds survive Reject: maybe_audit runs inside *)
      let world = AS.build () in
      (* a misconfigured state must refuse to continue *)
      X86.Desc_table.unsafe_set (Kernel.gdt world.AS.kernel) 0
        (X86.Descriptor.data ~base:0 ~limit:0xfff ~dpl:X86.Privilege.R0 ());
      match Paudit.force_audit ~context:"test" world.AS.kernel with
      | _ -> Alcotest.fail "Reject policy did not raise"
      | exception E.Rejected (ctx, r) ->
          Alcotest.(check string) "context carried" "test" ctx;
          check_bool "report carried" true (r.E.rp_findings <> []))

let test_warn_policy_continues () =
  with_policy E.Warn (fun () ->
      let world = AS.build () in
      X86.Desc_table.unsafe_set (Kernel.gdt world.AS.kernel) 0
        (X86.Descriptor.data ~base:0 ~limit:0xfff ~dpl:X86.Privilege.R0 ());
      let r = Paudit.force_audit ~context:"test" world.AS.kernel in
      check_bool "warn returns the findings" true (r.E.rp_findings <> []))

let test_policy_parsing () =
  let check_policy s expect =
    Alcotest.(check (option string))
      ("parse " ^ s) expect
      (Option.map E.policy_name (E.policy_of_string s))
  in
  check_policy "off" (Some "off");
  check_policy "WARN" (Some "warn");
  check_policy " reject " (Some "reject");
  check_policy "bogus" None;
  check_bool "verify parser agrees" true
    (Pconfig.verify_policy_of_string "reject" = Some Verify.Reject);
  check_bool "verify parser rejects junk" true
    (Pconfig.verify_policy_of_string "junk" = None)

(* --- descriptor mutation observability ---------------------------------- *)

let test_desc_mutation_counters () =
  let before = Obs.Counters.snapshot () in
  let gdt = X86.Desc_table.gdt () in
  let slot =
    X86.Desc_table.alloc gdt
      (X86.Descriptor.data ~base:0 ~limit:0xfff ~dpl:X86.Privilege.R0 ())
  in
  X86.Desc_table.set gdt slot
    (X86.Descriptor.data ~base:0 ~limit:0x1fff ~dpl:X86.Privilege.R0 ());
  X86.Desc_table.clear gdt slot;
  let after = Obs.Counters.snapshot () in
  let delta name = counter name after - counter name before in
  check_int "x86.gdt.alloc" 1 (delta "x86.gdt.alloc");
  check_int "x86.gdt.set" 1 (delta "x86.gdt.set");
  check_int "x86.gdt.clear" 1 (delta "x86.gdt.clear")

let test_audit_trace_events () =
  Obs.Trace.set_capacity 256;
  Obs.Trace.set_enabled true;
  let world = AS.build () in
  Paudit.force_audit ~context:"trace-test" world.AS.kernel |> ignore;
  Obs.Trace.set_enabled false;
  let events = Obs.Trace.events () in
  let has_kind k =
    List.exists
      (fun (e : Obs.Trace.entry) ->
        Obs.Trace.kind_of_event e.Obs.Trace.event = k)
      events
  in
  check_bool "desc mutation events traced" true (has_kind "desc");
  check_bool "audit outcome events traced" true (has_kind "audit")

let () =
  Alcotest.run "audit"
    [
      ( "clean",
        [
          Alcotest.test_case "all clean scenarios" `Quick test_clean_scenarios;
        ] );
      ( "misconfig",
        [ Alcotest.test_case "catalogue" `Slow test_misconfigs ] );
      ( "reach",
        [
          Alcotest.test_case "clean proof" `Quick test_reach_clean;
          Alcotest.test_case "rogue gate" `Quick test_reach_rogue_gate;
        ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest prop_corruption_flagged ] );
      ( "incremental",
        [ Alcotest.test_case "generation skip" `Quick test_incremental_skip ] );
      ( "policy",
        [
          Alcotest.test_case "reject raises" `Quick test_reject_policy;
          Alcotest.test_case "warn continues" `Quick test_warn_policy_continues;
          Alcotest.test_case "parsing" `Quick test_policy_parsing;
        ] );
      ( "observability",
        [
          Alcotest.test_case "descriptor counters" `Quick
            test_desc_mutation_counters;
          Alcotest.test_case "trace events" `Quick test_audit_trace_events;
        ] );
    ]
