(* Pluggable protection backends: the segmentation and protection-key
   mechanisms must be architecturally interchangeable — identical
   workload outputs, identical fault classifications — while the MPK
   escape hatches (forged wrpkru, wrong-keyed accesses) stay shut. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* --- differential oracle: Segmentation vs Mpk -------------------------- *)

(* A backend-neutral classification of a protected call's outcome: the
   two backends fault through different hardware (PPL page-privilege
   vs protection-key), but must agree on *what* was denied. *)
let neutral_fault = function
  | User_ext.Protection_fault f -> (
      match f with
      | X86.Fault.Page_privilege { access; _ } | X86.Fault.Page_key { access; _ }
        -> (
          match access with
          | X86.Fault.Read -> "denied-read"
          | X86.Fault.Write -> "denied-write"
          | X86.Fault.Execute -> "denied-exec")
      | _ -> "other-fault")
  | User_ext.Time_limit_exceeded _ -> "timeout"
  | User_ext.Runaway -> "runaway"

type outcome = Values of int list | Text of string | Fault of string

let pp_outcome = function
  | Values vs -> "values:" ^ String.concat "," (List.map string_of_int vs)
  | Text s -> "text:" ^ s
  | Fault c -> "fault:" ^ c

type scenario =
  | Strrev of string
  | Counter of int
  | Rogue_write
  | Rogue_read

let pp_scenario = function
  | Strrev s -> Printf.sprintf "Strrev %S" s
  | Counter n -> Printf.sprintf "Counter %d" n
  | Rogue_write -> "Rogue_write"
  | Rogue_read -> "Rogue_read"

let scenario_gen =
  let open QCheck.Gen in
  let ascii = map Char.chr (int_range 0x21 0x7e) in
  oneof
    [
      map (fun s -> Strrev s) (string_size ~gen:ascii (int_range 1 12));
      map (fun n -> Counter n) (int_range 1 6);
      return Rogue_write;
      return Rogue_read;
    ]

(* A hidden application page the extension must not touch. *)
let private_cell app =
  let task = Pbackend.task app in
  let area =
    Address_space.mmap task.Task.asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data
  in
  Address_space.populate task.Task.asp area;
  area.Vm_area.va_start

let run_scenario backend scenario =
  let w = Palladium.boot ~backend () in
  let app = Palladium.create_backend_app w ~name:"diff" in
  let call ext fn arg =
    Pbackend.call app ~prepare:(Pbackend.resolve app ext fn) ~arg
  in
  let r =
    match scenario with
    | Strrev s -> (
        let ext = Pbackend.load app Ulib.strrev_image in
        let buf = Pbackend.xmalloc ext 64 in
        Pbackend.poke_bytes app buf (Bytes.of_string (s ^ "\000"));
        match call ext "strrev" buf with
        | Ok _ ->
            Text (Bytes.to_string (Pbackend.peek_bytes app buf (String.length s)))
        | Error e -> Fault (neutral_fault e))
    | Counter n ->
        let ext = Pbackend.load app Ulib.counter_image in
        Values
          (List.init n (fun _ ->
               match call ext "bump" 0 with
               | Ok (v, _) -> v
               | Error e -> Alcotest.failf "bump: %a" User_ext.pp_call_error e))
    | Rogue_write -> (
        let ext = Pbackend.load app Ulib.rogue_write_image in
        let cell = private_cell app in
        Pbackend.poke_u32 app cell 0x5eed;
        match call ext "poke" cell with
        | Ok (v, _) -> Values [ v ]
        | Error e ->
            check_int "protected cell untouched" 0x5eed
              (Pbackend.peek_u32 app cell);
            Fault (neutral_fault e))
    | Rogue_read -> (
        let ext = Pbackend.load app Ulib.rogue_read_image in
        let cell = private_cell app in
        match call ext "peek" cell with
        | Ok (v, _) -> Values [ v ]
        | Error e -> Fault (neutral_fault e))
  in
  Palladium.teardown w;
  r

let prop_backends_agree =
  QCheck.Test.make ~count:20
    ~name:"segmentation and mpk agree on every workload outcome"
    (QCheck.make scenario_gen ~print:pp_scenario)
    (fun s ->
      let seg = run_scenario Pbackend.Segmentation s in
      let mpk = run_scenario Pbackend.Mpk s in
      if seg <> mpk then
        QCheck.Test.fail_reportf "seg=%s mpk=%s" (pp_outcome seg)
          (pp_outcome mpk);
      (* rogue scenarios must actually be denied, not just agree *)
      match (s, seg) with
      | Rogue_write, Fault "denied-write" -> true
      | Rogue_read, Fault "denied-read" -> true
      | (Rogue_write | Rogue_read), o ->
          QCheck.Test.fail_reportf "rogue access not denied: %s" (pp_outcome o)
      | _ -> true)

(* --- escape regressions ------------------------------------------------ *)

(* A wrong-keyed store faults with the page's key, the protected cell
   survives, and expose/hide toggles accessibility — the MPK analogue
   of the PPL expose/hide test. *)
let test_wrong_key_store_faults () =
  let w = Palladium.boot ~backend:Pbackend.Mpk () in
  let app = Palladium.create_backend_app w ~name:"app" in
  let ext = Pbackend.load app Ulib.rogue_write_image in
  let poke = Pbackend.resolve app ext "poke" in
  let cell = private_cell app in
  Pbackend.poke_u32 app cell 0x5eed;
  (match Pbackend.call app ~prepare:poke ~arg:cell with
  | Error (User_ext.Protection_fault (X86.Fault.Page_key { key; _ })) ->
      check_int "faulting key is the application key" Mpk_ext.app_key key
  | Error e -> Alcotest.failf "wrong fault: %a" User_ext.pp_call_error e
  | Ok _ -> Alcotest.fail "wrong-keyed store completed");
  check_int "cell survived the rogue store" 0x5eed (Pbackend.peek_u32 app cell);
  Pbackend.expose_range app ~addr:cell ~len:4;
  (match Pbackend.call app ~prepare:poke ~arg:cell with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "exposed store failed: %a" User_ext.pp_call_error e);
  check_int "exposed cell written" 0xdead (Pbackend.peek_u32 app cell);
  Pbackend.hide_range app ~addr:cell ~len:4;
  match Pbackend.call app ~prepare:poke ~arg:cell with
  | Error (User_ext.Protection_fault (X86.Fault.Page_key _)) -> ()
  | Error e -> Alcotest.failf "wrong fault after hide: %a" User_ext.pp_call_error e
  | Ok _ -> Alcotest.fail "store completed after hide_range"

let forged_wrpkru_image =
  Image.create ~name:"forged" ~exports:[ "evil" ]
    [
      Asm.L "evil";
      Asm.I (Instr.Wrpkru (Operand.Imm 0)); (* regain all rights *)
      Asm.I (Instr.Mov (Operand.Reg Reg.EAX, Operand.Imm 1));
      Asm.I Instr.Ret;
    ]

(* An extension image carrying its own wrpkru never loads: the
   verifier lint treats any wrpkru outside backend-generated stubs as
   an error, constant operand or not. *)
let test_forged_wrpkru_rejected_by_verifier () =
  let report =
    Verify.verify ~entries:[ "evil" ]
      ~region:(0, 1 lsl 30)
      ~name:"forged" forged_wrpkru_image.Image.text
  in
  check_bool "forged wrpkru image rejected" false (Verify.ok report);
  (* the backend's own stubs pass: their operand is in the assigned set *)
  let sanctioned =
    Verify.verify ~entries:[ "evil" ]
      ~region:(0, 1 lsl 30)
      ~allowed_wrpkru:(fun v -> v = 0)
      ~name:"sanctioned" forged_wrpkru_image.Image.text
  in
  check_bool "backend-assigned wrpkru accepted" true (Verify.ok sanctioned);
  (* a non-constant operand is unauditable even for the backend *)
  let indirect =
    Image.create ~name:"indirect-wrpkru" ~exports:[ "evil" ]
      [
        Asm.L "evil";
        Asm.I (Instr.Wrpkru (Operand.Reg Reg.EAX));
        Asm.I Instr.Ret;
      ]
  in
  let r =
    Verify.verify ~entries:[ "evil" ]
      ~region:(0, 1 lsl 30)
      ~allowed_wrpkru:(fun _ -> true)
      ~name:"indirect-wrpkru" indirect.Image.text
  in
  check_bool "non-constant wrpkru rejected" false (Verify.ok r)

(* Under a Reject world policy the forged image must not even load. *)
let test_forged_wrpkru_load_rejected () =
  let w =
    Palladium.boot ~backend:Pbackend.Mpk ~verify_policy:Verify.Reject ()
  in
  let app = Palladium.create_backend_app w ~name:"app" in
  match Pbackend.load app forged_wrpkru_image with
  | exception Verify.Rejected _ -> ()
  | _ -> Alcotest.fail "forged wrpkru image loaded under Reject policy"

(* A wrpkru planted in code memory outside the registered stub ranges
   is a forged protection-key gate: the auditor must cite INV-23. *)
let test_rogue_wrpkru_flagged_by_audit () =
  let w = Palladium.boot ~backend:Pbackend.Mpk () in
  let kernel = Palladium.kernel w in
  let app = Palladium.create_backend_app w ~name:"app" in
  ignore (Pbackend.load app Ulib.null_image);
  let clean = Paudit.force_audit ~context:"before forgery" kernel in
  check_bool "clean mpk world audits clean" true (Audit.Engine.ok clean);
  Code_mem.store (Kernel.code kernel) ~addr:0x00ff0000
    (Instr.Wrpkru (Operand.Imm 0));
  let r = Paudit.force_audit ~context:"after forgery" kernel in
  let ids =
    List.sort_uniq String.compare
      (List.map (fun f -> f.Audit.Finding.f_id) r.Audit.Engine.rp_findings)
  in
  check_bool "INV-23 cited" true (List.mem "INV-23" ids)

(* The whole point of the backend: the protection-key transfer must be
   measurably cheaper than the segmentation gate path. *)
let test_mpk_transfer_cheaper () =
  let cost backend =
    let w = Palladium.boot ~backend () in
    let app = Palladium.create_backend_app w ~name:"cost" in
    let ext = Pbackend.load app Ulib.null_image in
    let prepare = Pbackend.resolve app ext "null_fn" in
    ignore (Pbackend.call app ~prepare ~arg:0);
    let c =
      match Pbackend.call app ~prepare ~arg:0 with
      | Ok (_, cycles) -> cycles
      | Error e -> Alcotest.failf "null call: %a" User_ext.pp_call_error e
    in
    Palladium.teardown w;
    c
  in
  let seg = cost Pbackend.Segmentation and mpk = cost Pbackend.Mpk in
  check_bool
    (Printf.sprintf "mpk (%d cycles) cheaper than seg (%d cycles)" mpk seg)
    true (mpk < seg)

(* Backend selection: boot override beats the process default, and the
   world's apps follow it. *)
let test_backend_selection () =
  let w = Palladium.boot ~backend:Pbackend.Mpk () in
  check_string "world backend" "mpk" (Pbackend.kind_name (Palladium.backend w));
  (match Palladium.create_backend_app w ~name:"a" with
  | Pbackend.Mpk_app _ -> ()
  | Pbackend.Seg _ -> Alcotest.fail "world override ignored");
  (match Palladium.create_backend_app ~backend:Pbackend.Segmentation w ~name:"b" with
  | Pbackend.Seg _ -> ()
  | Pbackend.Mpk_app _ -> Alcotest.fail "explicit backend ignored");
  (* a plain boot follows the process default, whatever that is —
     CI runs this suite under PALLADIUM_BACKEND=seg and =mpk *)
  let plain = Palladium.boot () in
  check_string "default backend"
    (Pbackend.kind_name (Pbackend.default ()))
    (Pbackend.kind_name (Palladium.backend plain));
  match Pbackend.kind_of_string "nonsense" with
  | Some _ -> Alcotest.fail "nonsense backend parsed"
  | None -> ()

let () =
  Alcotest.run "backends"
    [
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_backends_agree ] );
      ( "escapes",
        [
          Alcotest.test_case "wrong-keyed store faults" `Quick
            test_wrong_key_store_faults;
          Alcotest.test_case "forged wrpkru rejected by verifier" `Quick
            test_forged_wrpkru_rejected_by_verifier;
          Alcotest.test_case "forged wrpkru load rejected" `Quick
            test_forged_wrpkru_load_rejected;
          Alcotest.test_case "rogue wrpkru flagged by audit" `Quick
            test_rogue_wrpkru_flagged_by_audit;
        ] );
      ( "cost",
        [
          Alcotest.test_case "mpk transfer cheaper than seg" `Quick
            test_mpk_transfer_cheaper;
        ] );
      ( "selection",
        [ Alcotest.test_case "backend selection layers" `Quick test_backend_selection ] );
    ]
