(* End-to-end span profiler test: run real protected calls with
   profiling on and check that the span tree reconstructs the Figure 6
   control transfer — the Prepare stub, the privilege-lowering lret,
   the extension body, the lcall through AppCallGate and the final
   return — and that the Chrome-trace exporter carries those phases. *)

module J = Obs.Json
module S = Obs.Span
module H = Obs.Histogram

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let phase_names = [ "Prepare"; "lret"; "ext.body"; "lcall"; "ret" ]

let profile_calls n =
  S.clear ();
  H.reset_all ();
  S.set_enabled true;
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:"prof" in
  let ext = User_ext.seg_dlopen app Ulib.null_image in
  let prepare = User_ext.seg_dlsym app ext "null_fn" in
  for _ = 1 to n do
    match User_ext.call app ~prepare ~arg:1 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "protected call failed: %a" User_ext.pp_call_error e
  done;
  S.set_enabled false;
  S.spans ()

let spans_named name spans =
  List.filter (fun s -> String.equal s.S.sp_name name) spans

let test_protected_call_span_tree () =
  let spans = profile_calls 3 in
  let roots = spans_named "protected_call" spans in
  check_int "one root span per call" 3 (List.length roots);
  List.iter
    (fun root ->
      check_bool "root has no parent" true (root.S.sp_parent = None);
      (* every Table 1 phase appears exactly once under each root *)
      List.iter
        (fun phase ->
          let children =
            List.filter
              (fun s ->
                String.equal s.S.sp_name phase
                && s.S.sp_parent = Some root.S.sp_id)
              spans
          in
          check_int (phase ^ " under the root") 1 (List.length children);
          let c = List.hd children in
          check_bool (phase ^ " inside the root's window") true
            (root.S.sp_start <= c.S.sp_start && c.S.sp_stop <= root.S.sp_stop))
        phase_names)
    roots;
  (* the hardware ring crossings land under the same roots *)
  check_bool "lret ring crossings captured" true
    (List.length (spans_named "hw.lret" spans) >= 3);
  check_bool "lcall ring crossings captured" true
    (List.length (spans_named "hw.lcall" spans) >= 3);
  (* phase durations feed the per-name histograms *)
  List.iter
    (fun phase ->
      match H.find phase with
      | Some h -> check_int (phase ^ " histogram count") 3 (H.count h)
      | None -> Alcotest.failf "no histogram for %s" phase)
    phase_names;
  S.clear ();
  H.reset_all ()

let test_chrome_trace_carries_phases () =
  let spans = profile_calls 1 in
  let doc = Obs.Export.chrome_trace spans in
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let names =
    List.filter_map
      (fun ev ->
        match J.member "name" ev with Some (J.String s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun phase ->
      check_bool ("trace event for " ^ phase) true (List.mem phase names))
    ("protected_call" :: phase_names);
  (* the export must be valid JSON *)
  (match J.of_string (J.pretty doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e);
  (* and the folded stacks expose the phases as children of the root *)
  let folded = Obs.Export.folded spans in
  let lines = String.split_on_char '\n' folded in
  check_bool "folded stack for Prepare" true
    (List.exists
       (fun l ->
         String.length l >= 23 && String.sub l 0 23 = "protected_call;Prepare ")
       lines);
  S.clear ();
  H.reset_all ()

let test_phase_budget_consistency () =
  (* the sum of the non-body phases is the Table 1 total: it must agree
     with what the call itself reports (the root span covers watchdog
     arming and runtime dispatch too, so it is an upper bound) *)
  let spans = profile_calls 2 in
  let root =
    match spans_named "protected_call" spans with
    | _ :: warm :: _ -> warm (* second call: warm TLB, steady state *)
    | _ -> Alcotest.fail "missing root spans"
  in
  let dur name =
    match
      List.find_opt
        (fun s ->
          String.equal s.S.sp_name name && s.S.sp_parent = Some root.S.sp_id)
        spans
    with
    | Some s -> s.S.sp_stop - s.S.sp_start
    | None -> Alcotest.failf "missing %s" name
  in
  let phase_sum = List.fold_left (fun a n -> a + dur n) 0 phase_names in
  let root_dur = root.S.sp_stop - root.S.sp_start in
  check_bool "phases fit inside the root span" true (phase_sum <= root_dur);
  check_bool "phases dominate the root span" true
    (float_of_int phase_sum >= 0.8 *. float_of_int root_dur);
  S.clear ();
  H.reset_all ()

let () =
  Alcotest.run "profile"
    [
      ( "protected-call",
        [
          Alcotest.test_case "span tree has the Figure 6 phases" `Quick
            test_protected_call_span_tree;
          Alcotest.test_case "chrome trace carries the phases" `Quick
            test_chrome_trace_carries_phases;
          Alcotest.test_case "phase budget consistency" `Quick
            test_phase_budget_consistency;
        ] );
    ]
