(* Tests for the BPF substrate: validator, reference VM semantics, a
   differential property test between the OCaml reference interpreter
   and the interpreter written in simulated assembly, filter-compiler
   agreement, and the native compiled filter. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Validator ----------------------------------------------------------- *)

let test_validator () =
  let ok prog =
    match Bpf_insn.validate prog with
    | Ok () -> ()
    | Error e -> Alcotest.failf "expected valid: %s" e
  in
  let bad prog =
    match Bpf_insn.validate prog with
    | Ok () -> Alcotest.fail "expected invalid"
    | Error _ -> ()
  in
  ok [| Bpf_insn.Ret_k 1 |];
  ok [| Bpf_insn.Ld_abs (Bpf_insn.H, 12); Bpf_insn.Ret_a |];
  bad [||];
  (* falls off the end *)
  bad [| Bpf_insn.Ld_imm 3 |];
  (* out-of-bounds jump *)
  bad [| Bpf_insn.Jmp (Bpf_insn.Jeq, Bpf_insn.K, 0, 5, 0); Bpf_insn.Ret_a |];
  bad [| Bpf_insn.Ja 9; Bpf_insn.Ret_a |];
  (* scratch slot out of range *)
  bad [| Bpf_insn.St 16; Bpf_insn.Ret_a |];
  (* division by constant zero *)
  bad [| Bpf_insn.Alu (Bpf_insn.Div, Bpf_insn.K, 0); Bpf_insn.Ret_a |]

(* --- Reference VM semantics ---------------------------------------------- *)

let pkt = Packet.to_bytes (Pkt_gen.matching_packet ())

let test_vm_loads () =
  let run prog = Bpf_vm.run (Array.of_list prog) ~packet:pkt in
  check_int "ldh ethertype" Packet.ethertype_ip
    (run [ Bpf_insn.Ld_abs (Bpf_insn.H, Packet.off_ether_type); Bpf_insn.Ret_a ]);
  check_int "ldb proto" Packet.proto_udp
    (run [ Bpf_insn.Ld_abs (Bpf_insn.B, Packet.off_ip_proto); Bpf_insn.Ret_a ]);
  check_int "ld word src ip" Pkt_gen.target_src
    (run [ Bpf_insn.Ld_abs (Bpf_insn.W, Packet.off_ip_src); Bpf_insn.Ret_a ]);
  check_int "len" (Bytes.length pkt) (run [ Bpf_insn.Ld_len; Bpf_insn.Ret_a ]);
  (* msh: IP header length (0x45 -> 20 bytes) *)
  check_int "msh" 20
    (run [ Bpf_insn.Ldx_msh Packet.off_ip_start; Bpf_insn.Txa; Bpf_insn.Ret_a ]);
  (* indexed load: src port at [x+14] *)
  check_int "ld_ind src port" Pkt_gen.target_src_port
    (run
       [
         Bpf_insn.Ldx_msh Packet.off_ip_start;
         Bpf_insn.Ld_ind (Bpf_insn.H, Packet.off_ip_start);
         Bpf_insn.Ret_a;
       ])

let test_vm_alu_and_scratch () =
  let run prog = Bpf_vm.run (Array.of_list prog) ~packet:pkt in
  check_int "alu chain" ((((5 + 3) * 4) - 2) lsr 1)
    (run
       [
         Bpf_insn.Ld_imm 5;
         Bpf_insn.Alu (Bpf_insn.Add, Bpf_insn.K, 3);
         Bpf_insn.Alu (Bpf_insn.Mul, Bpf_insn.K, 4);
         Bpf_insn.Alu (Bpf_insn.Sub, Bpf_insn.K, 2);
         Bpf_insn.Alu (Bpf_insn.Rsh, Bpf_insn.K, 1);
         Bpf_insn.Ret_a;
       ]);
  check_int "scratch memory" 99
    (run
       [
         Bpf_insn.Ld_imm 99;
         Bpf_insn.St 3;
         Bpf_insn.Ld_imm 0;
         Bpf_insn.Ld_mem 3;
         Bpf_insn.Ret_a;
       ]);
  check_int "x alu source" 30
    (run
       [
         Bpf_insn.Ldx_imm 10;
         Bpf_insn.Ld_imm 20;
         Bpf_insn.Alu (Bpf_insn.Add, Bpf_insn.X, 0);
         Bpf_insn.Ret_a;
       ])

let test_vm_jumps () =
  let run prog = Bpf_vm.run (Array.of_list prog) ~packet:pkt in
  check_int "jeq taken" 1
    (run
       [
         Bpf_insn.Ld_imm 7;
         Bpf_insn.Jmp (Bpf_insn.Jeq, Bpf_insn.K, 7, 1, 0);
         Bpf_insn.Ret_k 0;
         Bpf_insn.Ret_k 1;
       ]);
  check_int "jgt not taken" 0
    (run
       [
         Bpf_insn.Ld_imm 7;
         Bpf_insn.Jmp (Bpf_insn.Jgt, Bpf_insn.K, 9, 1, 0);
         Bpf_insn.Ret_k 0;
         Bpf_insn.Ret_k 1;
       ]);
  check_int "ja" 5 (run [ Bpf_insn.Ja 1; Bpf_insn.Ret_k 9; Bpf_insn.Ret_k 5 ])

let test_vm_out_of_bounds () =
  match Bpf_vm.run [| Bpf_insn.Ld_abs (Bpf_insn.W, 4000); Bpf_insn.Ret_a |] ~packet:pkt with
  | _ -> Alcotest.fail "expected out-of-bounds"
  | exception Bpf_vm.Bpf_error (Bpf_vm.Out_of_bounds _) -> ()

(* --- Differential test: OCaml VM vs simulated-assembly interpreter ------- *)

(* Generator for valid programs whose packet accesses stay within a
   42-byte header (so both interpreters see in-bounds loads). *)
let gen_program =
  let open QCheck.Gen in
  let gen_insn remaining =
    frequency
      [
        (3, map2 (fun s k ->
                 let size = match s with 0 -> Bpf_insn.B | 1 -> Bpf_insn.H | _ -> Bpf_insn.W in
                 Bpf_insn.Ld_abs (size, k))
               (int_bound 2) (int_bound 38));
        (2, map (fun k -> Bpf_insn.Ld_imm k) (int_bound 0xFFFF));
        (1, map (fun k -> Bpf_insn.Ldx_imm k) (int_bound 0xFF));
        (2, map2 (fun op k ->
                 let o = match op with
                   | 0 -> Bpf_insn.Add | 1 -> Bpf_insn.Sub
                   | 2 -> Bpf_insn.And | _ -> Bpf_insn.Or
                 in
                 Bpf_insn.Alu (o, Bpf_insn.K, k))
               (int_bound 3) (int_bound 0xFFFF));
        (1, return Bpf_insn.Tax);
        (1, return Bpf_insn.Txa);
        (1, map (fun s -> Bpf_insn.St s) (int_bound 15));
        (1, map (fun s -> Bpf_insn.Ld_mem s) (int_bound 15));
        ( 2,
          if remaining <= 1 then return Bpf_insn.Tax
          else
            map2 (fun c (k, (jt, jf)) ->
                let cond = match c with
                  | 0 -> Bpf_insn.Jeq | 1 -> Bpf_insn.Jgt | _ -> Bpf_insn.Jset
                in
                Bpf_insn.Jmp (cond, Bpf_insn.K, k,
                              jt mod remaining, jf mod remaining))
              (int_bound 2)
              (pair (int_bound 0xFFFF)
                 (pair (int_bound 20) (int_bound 20))) );
      ]
  in
  let* n = int_range 1 14 in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let remaining = n - i in
      let* insn = gen_insn remaining in
      build (i + 1) (insn :: acc)
  in
  let* body = build 0 [] in
  let* ret = frequency [ (3, return Bpf_insn.Ret_a); (1, map (fun k -> Bpf_insn.Ret_k k) (int_bound 0xFFFF)) ] in
  return (Array.of_list (body @ [ ret ]))

let arbitrary_program =
  QCheck.make ~print:(fun prog ->
      String.concat "; "
        (Array.to_list (Array.map (Fmt.str "%a" Bpf_insn.pp) prog)))
    gen_program

(* A shared interpreter world, reused across qcheck cases to keep the
   property test fast. *)
let interp_world =
  lazy
    (let k = Kernel.boot () in
     let task = Kernel.create_task k ~name:"diff" in
     let interp = Bpf_asm_interp.load k in
     (task, interp))

let prop_vm_vs_asm_interp =
  QCheck.Test.make ~count:60 ~name:"reference VM agrees with simulated interpreter"
    arbitrary_program
    (fun prog ->
      match Bpf_insn.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let task, interp = Lazy.force interp_world in
          let expected = Bpf_vm.run prog ~packet:pkt in
          Bpf_asm_interp.set_program interp prog;
          Bpf_asm_interp.set_packet interp pkt;
          let got, _cycles = Bpf_asm_interp.run interp task in
          got = expected)

(* --- Filter compilation ---------------------------------------------------- *)

let prop_filter_compilers_agree =
  QCheck.Test.make ~count:40
    ~name:"optimised and tcpdump-style BPF agree with the direct oracle"
    QCheck.(pair (int_range 0 6) (int_bound 1_000_000))
    (fun (nterms, seed) ->
      let terms = Filter_expr.canonical nterms in
      let gen = Pkt_gen.create ~seed () in
      let packet =
        Packet.to_bytes (Pkt_gen.random_packet gen ~match_percent:50)
      in
      let oracle = Filter_expr.matches terms ~packet in
      let opt = Bpf_vm.accepts (Filter_expr.to_bpf terms) ~packet in
      let tcpd = Bpf_vm.accepts (Filter_expr.to_bpf_tcpdump terms) ~packet in
      opt = oracle && tcpd = oracle)

let test_native_filter_agrees () =
  let w = Palladium.boot () in
  let kernel = Palladium.kernel w in
  let task = Kernel.create_task kernel ~name:"t" in
  let terms = Filter_expr.canonical 4 in
  let seg = Palladium.create_kernel_segment w in
  let nf = Native_compile.load seg terms in
  let gen = Pkt_gen.create () in
  let packets =
    Packet.to_bytes (Pkt_gen.matching_packet ())
    :: List.map Packet.to_bytes (Pkt_gen.stream gen ~count:6 ~match_percent:30)
  in
  List.iter
    (fun packet ->
      let oracle = Filter_expr.matches terms ~packet in
      match Native_compile.run nf task ~packet with
      | Ok (v, _) -> check_bool "native agrees with oracle" oracle (v = 1)
      | Error e -> Alcotest.failf "native run failed: %a" Kernel_ext.pp_invoke_error e)
    packets

(* The Figure 7 headline, locked in as a regression test: interpreter
   cost grows with terms, compiled cost is nearly flat, and the
   compiled filter wins by >= 2x at 4 terms. *)
let test_figure7_shape () =
  let w = Palladium.boot () in
  let kernel = Palladium.kernel w in
  let task = Kernel.create_task kernel ~name:"t" in
  let interp = Bpf_asm_interp.load kernel in
  let measure n =
    let terms = Filter_expr.canonical n in
    Bpf_asm_interp.set_program interp (Filter_expr.to_bpf_tcpdump terms);
    Bpf_asm_interp.set_packet interp pkt;
    ignore (Bpf_asm_interp.run interp task);
    let _, bpf = Bpf_asm_interp.run interp task in
    let seg = Palladium.create_kernel_segment w in
    let nf = Native_compile.load seg terms in
    ignore (Native_compile.run nf task ~packet:pkt);
    match Native_compile.run nf task ~packet:pkt with
    | Ok (_, native) -> (bpf, native)
    | Error e -> Alcotest.failf "native: %a" Kernel_ext.pp_invoke_error e
  in
  let b0, n0 = measure 0 in
  let b4, n4 = measure 4 in
  check_bool "interpreter grows with terms" true (b4 > 4 * b0);
  check_bool "compiled nearly flat" true (n4 - n0 < 60);
  check_bool "compiled >= 2x faster at 4 terms" true (b4 >= 2 * n4)

let test_interpreter_rejects_oob () =
  let task, interp = Lazy.force interp_world in
  (* load beyond a short packet: safely rejected, not a fault *)
  Bpf_asm_interp.set_program interp
    [| Bpf_insn.Ld_abs (Bpf_insn.W, 100); Bpf_insn.Ret_a |];
  Bpf_asm_interp.set_packet interp (Bytes.create 20);
  let v, _ = Bpf_asm_interp.run interp task in
  check_int "oob load rejects packet" 0 v

let test_encode_distinct () =
  let codes =
    List.map
      (fun insn ->
        let c, _, _, _ = Bpf_insn.encode insn in
        c)
      [
        Bpf_insn.Ld_abs (Bpf_insn.W, 0);
        Bpf_insn.Ld_abs (Bpf_insn.H, 0);
        Bpf_insn.Ld_abs (Bpf_insn.B, 0);
        Bpf_insn.Ld_ind (Bpf_insn.H, 0);
        Bpf_insn.Ld_imm 0;
        Bpf_insn.Ldx_imm 0;
        Bpf_insn.Ldx_msh 0;
        Bpf_insn.St 0;
        Bpf_insn.Ja 0;
        Bpf_insn.Jmp (Bpf_insn.Jeq, Bpf_insn.K, 0, 0, 0);
        Bpf_insn.Jmp (Bpf_insn.Jgt, Bpf_insn.K, 0, 0, 0);
        Bpf_insn.Ret_k 0;
        Bpf_insn.Ret_a;
        Bpf_insn.Tax;
        Bpf_insn.Txa;
      ]
  in
  check_int "all opcodes distinct"
    (List.length codes)
    (List.length (List.sort_uniq compare codes))

(* The classic encodings from net/bpf.h. *)
let test_encode_classic_values () =
  let code insn =
    let c, _, _, _ = Bpf_insn.encode insn in
    c
  in
  check_int "ldh abs" 0x28 (code (Bpf_insn.Ld_abs (Bpf_insn.H, 0)));
  check_int "ld abs" 0x20 (code (Bpf_insn.Ld_abs (Bpf_insn.W, 0)));
  check_int "ldb abs" 0x30 (code (Bpf_insn.Ld_abs (Bpf_insn.B, 0)));
  check_int "jeq" 0x15 (code (Bpf_insn.Jmp (Bpf_insn.Jeq, Bpf_insn.K, 0, 0, 0)));
  check_int "ret k" 0x06 (code (Bpf_insn.Ret_k 0));
  check_int "ldx msh" 0xB1 (code (Bpf_insn.Ldx_msh 0))

(* --- Packet substrate ------------------------------------------------------ *)

let test_packet_wire_format () =
  let p =
    Packet.udp ~src:(Packet.ip 1 2 3 4) ~dst:(Packet.ip 5 6 7 8) ~src_port:80
      ~dst_port:443 ()
  in
  let b = Packet.to_bytes p in
  check_int "ethertype big-endian" Packet.ethertype_ip
    (Packet.get16 b Packet.off_ether_type);
  check_int "proto" Packet.proto_udp (Packet.get8 b Packet.off_ip_proto);
  check_int "src ip" (Packet.ip 1 2 3 4) (Packet.get32 b Packet.off_ip_src);
  check_int "dst ip" (Packet.ip 5 6 7 8) (Packet.get32 b Packet.off_ip_dst);
  check_int "src port" 80 (Packet.get16 b Packet.off_src_port);
  check_int "dst port" 443 (Packet.get16 b Packet.off_dst_port);
  check_int "ihl nibble" 0x45 (Packet.get8 b Packet.off_ip_start);
  check_int "length" (42 + 18) (Bytes.length b)

let test_pkt_gen_deterministic () =
  let s1 = Pkt_gen.stream (Pkt_gen.create ~seed:7 ()) ~count:20 ~match_percent:30 in
  let s2 = Pkt_gen.stream (Pkt_gen.create ~seed:7 ()) ~count:20 ~match_percent:30 in
  check_bool "same seed, same stream" true
    (List.for_all2 (fun a b -> Packet.to_bytes a = Packet.to_bytes b) s1 s2);
  let s3 = Pkt_gen.stream (Pkt_gen.create ~seed:8 ()) ~count:20 ~match_percent:30 in
  check_bool "different seed differs" false
    (List.for_all2 (fun a b -> Packet.to_bytes a = Packet.to_bytes b) s1 s3)

let test_pkt_gen_match_fraction () =
  let full = Filter_expr.canonical 6 in
  let count p =
    List.length
      (List.filter
         (fun pkt -> Filter_expr.matches full ~packet:(Packet.to_bytes pkt))
         (Pkt_gen.stream (Pkt_gen.create ()) ~count:400 ~match_percent:p))
  in
  check_int "0%% never matches" 0 (count 0);
  check_int "100%% always matches" 400 (count 100);
  let half = count 50 in
  check_bool "50%% roughly half" true (half > 120 && half < 280)

let prop_packet_fields_roundtrip =
  QCheck.Test.make ~name:"packet builder/accessor roundtrip"
    QCheck.(
      quad (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xFFFFFFF)
        (int_bound 0xFFFFFFF))
    (fun (sp, dp, src, dst) ->
      let b =
        Packet.to_bytes (Packet.udp ~src ~dst ~src_port:sp ~dst_port:dp ())
      in
      Packet.get16 b Packet.off_src_port = sp
      && Packet.get16 b Packet.off_dst_port = dp
      && Packet.get32 b Packet.off_ip_src = src
      && Packet.get32 b Packet.off_ip_dst = dst)

let () =
  Alcotest.run "bpf"
    [
      ( "packets",
        [
          Alcotest.test_case "wire format" `Quick test_packet_wire_format;
          Alcotest.test_case "generator determinism" `Quick
            test_pkt_gen_deterministic;
          Alcotest.test_case "match fraction" `Quick test_pkt_gen_match_fraction;
          QCheck_alcotest.to_alcotest prop_packet_fields_roundtrip;
        ] );
      ("validator", [ Alcotest.test_case "accept/reject" `Quick test_validator ]);
      ( "reference-vm",
        [
          Alcotest.test_case "packet loads" `Quick test_vm_loads;
          Alcotest.test_case "alu and scratch" `Quick test_vm_alu_and_scratch;
          Alcotest.test_case "jumps" `Quick test_vm_jumps;
          Alcotest.test_case "out of bounds" `Quick test_vm_out_of_bounds;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_vm_vs_asm_interp;
          Alcotest.test_case "interpreter rejects OOB" `Quick
            test_interpreter_rejects_oob;
        ] );
      ( "filters",
        [
          QCheck_alcotest.to_alcotest prop_filter_compilers_agree;
          Alcotest.test_case "native filter agrees" `Quick test_native_filter_agrees;
          Alcotest.test_case "figure 7 shape holds" `Quick test_figure7_shape;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "distinct" `Quick test_encode_distinct;
          Alcotest.test_case "classic values" `Quick test_encode_classic_values;
        ] );
    ]
