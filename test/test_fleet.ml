(* Tests for the domain-parallel fleet runner and the per-sink metric
   ownership it relies on: sink isolation, Sink.merge, serial-vs-
   parallel determinism of per-world results, atomic ID allocation
   across domains, and per-kernel auditor state teardown. *)

module S = Obs.Sink
module C = Obs.Counters
module H = Obs.Histogram

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Sink isolation and merge ----------------------------------------- *)

let test_sink_isolation () =
  let c = C.counter "test.fleet.iso" in
  let before = C.value c in
  let inner = S.create ~label:"iso" () in
  S.with_sink inner (fun () ->
      C.add c 7;
      check_int "inner sees its own increments" 7 (C.value c));
  check_int "outer sink unchanged" before (C.value c);
  check_int "inner retains value after exit" 7 (S.counter_value inner "test.fleet.iso")

let test_sink_merge_counters () =
  let c = C.counter "test.fleet.merge" in
  let a = S.create ~label:"a" () and b = S.create ~label:"b" () in
  S.with_sink a (fun () -> C.add c 3);
  S.with_sink b (fun () -> C.add c 5);
  let m = S.create ~label:"m" () in
  S.merge ~into:m a;
  S.merge ~into:m b;
  check_int "merged counter sums" 8 (S.counter_value m "test.fleet.merge");
  check_int "source unchanged" 3 (S.counter_value a "test.fleet.merge");
  Alcotest.check_raises "self-merge rejected"
    (Invalid_argument "Sink.merge: cannot merge a sink into itself") (fun () ->
      S.merge ~into:m m)

let test_sink_merge_histograms () =
  let a = S.create () and b = S.create () in
  S.with_sink a (fun () ->
      let h = H.get_or_create "test.fleet.hist" in
      H.observe h 10;
      H.observe h 20);
  S.with_sink b (fun () ->
      let h = H.get_or_create "test.fleet.hist" in
      H.observe h 30);
  let m = S.create () in
  S.merge ~into:m a;
  S.merge ~into:m b;
  match S.find_histogram m "test.fleet.hist" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      check_int "count" 3 (H.count h);
      check_int "sum" 60 (H.sum h);
      Alcotest.(check (option int)) "min" (Some 10) (H.min_value h);
      Alcotest.(check (option int)) "max" (Some 30) (H.max_value h)

let test_sink_merge_spans_and_traces () =
  let a = S.create () in
  S.with_sink a (fun () ->
      Obs.Span.set_enabled true;
      Obs.Trace.set_enabled true;
      Obs.Span.begin_ "work" ~at:5;
      Obs.Span.end_ "work" ~at:9;
      Obs.Trace.emit ~cycles:3 (Obs.Trace.Custom "hello"));
  let m = S.create () in
  S.merge ~into:m a;
  check_int "span carried" 1 (List.length (S.spans m));
  check_int "trace event carried" 1 (List.length (S.trace_events m))

(* --- Fleet: sharding, values, errors ----------------------------------- *)

let test_fleet_values_in_order () =
  let fl = Fleet.run ~domains:2 ~worlds:5 (fun i -> i * i) in
  Alcotest.(check (list int)) "values ascend by world" [ 0; 1; 4; 9; 16 ]
    (Fleet.values fl);
  check_int "domains recorded" 2 fl.Fleet.f_domains;
  check_int "worlds recorded" 5 fl.Fleet.f_worlds

let test_fleet_zero_worlds () =
  let fl = Fleet.run ~domains:3 ~worlds:0 (fun _ -> Alcotest.fail "no world") in
  check_int "no results" 0 (List.length (Fleet.results fl))

let test_fleet_error_propagates () =
  Alcotest.check_raises "world failure re-raised" (Failure "world 2 broke")
    (fun () ->
      ignore
        (Fleet.run ~domains:2 ~worlds:4 (fun i ->
             if i = 2 then failwith "world 2 broke")))

let test_fleet_invalid_args () =
  Alcotest.check_raises "negative worlds"
    (Invalid_argument "Fleet.run: negative world count") (fun () ->
      ignore (Fleet.run ~worlds:(-1) (fun i -> i)));
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Fleet.run: domains must be >= 1") (fun () ->
      ignore (Fleet.run ~domains:0 ~worlds:2 (fun i -> i)))

(* --- Determinism: serial vs parallel ----------------------------------- *)

(* A seeded synthetic workload: a little LCG drives counter bumps and
   histogram observations, so each world's sink contents depend only on
   (seed, world index) — never on scheduling. *)
let synthetic_world ~seed ~steps i =
  let state = ref ((seed * 31) + (i * 7) + 1) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let c = C.counter (Printf.sprintf "test.fleet.synth.%d" (i mod 3)) in
  let h = H.get_or_create "test.fleet.synth_hist" in
  for _ = 1 to steps do
    C.add c (next () mod 5);
    H.observe h (next () mod 1000)
  done;
  C.value c

let test_fleet_synthetic_determinism () =
  let f = synthetic_world ~seed:42 ~steps:200 in
  let serial = Fleet.run ~domains:1 ~worlds:6 f in
  let par = Fleet.run ~domains:4 ~worlds:6 f in
  Alcotest.(check (list int)) "world values identical" (Fleet.values serial)
    (Fleet.values par);
  Alcotest.(check (list (pair int string))) "no divergences" []
    (Fleet.divergences serial par)

(* Each world boots a real Palladium world, loads an extension into a
   protected segment and drives protected calls: TLB/MMU/kernel
   counters must land in the world's own sink and match the serial
   run exactly. *)
let palladium_world i =
  let w = Palladium.boot () in
  let app = Palladium.create_app w ~name:(Printf.sprintf "w%d" i) in
  let ext = User_ext.seg_dlopen app Ulib.null_image in
  let prepare = User_ext.seg_dlsym app ext "null_fn" in
  let calls = 3 + (i mod 2) in
  for _ = 1 to calls do
    ignore (User_ext.call app ~prepare ~arg:42)
  done;
  Palladium.teardown w;
  calls

let test_fleet_palladium_determinism () =
  let serial = Fleet.run ~domains:1 ~worlds:4 palladium_world in
  let par = Fleet.run ~domains:3 ~worlds:4 palladium_world in
  Alcotest.(check (list int)) "calls per world" [ 3; 4; 3; 4 ]
    (Fleet.values par);
  Alcotest.(check (list (pair int string))) "no divergences" []
    (Fleet.divergences serial par);
  (* and the worlds really did produce protection traffic *)
  let merged = Fleet.merged par in
  let some_nonzero prefix =
    List.exists
      (fun (n, v) ->
        String.length n >= String.length prefix
        && String.sub n 0 (String.length prefix) = prefix
        && v > 0)
      (S.counters merged)
  in
  check_bool "merged sink saw TLB traffic" true (some_nonzero "x86.tlb");
  check_bool "merged sink saw ring crossings" true
    (some_nonzero "machine.crossings")

let prop_fleet_determinism =
  QCheck.Test.make ~count:12 ~name:"serial vs parallel fleets agree"
    QCheck.(triple (int_bound 1000) (int_range 1 5) (int_range 1 4))
    (fun (seed, worlds, domains) ->
      let f = synthetic_world ~seed ~steps:50 in
      let serial = Fleet.run ~domains:1 ~worlds f in
      let par = Fleet.run ~domains ~worlds f in
      Fleet.values serial = Fleet.values par
      && Fleet.divergences serial par = [])

(* The synthetic workload again, but each world also drives an
   {!Obs.Collector} on a seeded simulated clock — the sampled time
   series (ring contents, timestamps, deltas, interval histograms)
   must come out bit-identical whether the fleet ran serially or
   sharded over domains. *)
let sampled_world ~collectors ~seed ~steps i =
  let state = ref ((seed * 31) + (i * 7) + 1) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let c = C.counter (Printf.sprintf "test.fleet.ts.%d" (i mod 2)) in
  let h = H.get_or_create "test.fleet.ts_hist" in
  let co = collectors.(i) in
  let now = ref 0 in
  for _ = 1 to steps do
    C.add c (next () mod 5);
    H.observe h (next () mod 1000);
    now := !now + 40 + (next () mod 100);
    Obs.Collector.tick co ~now:!now
  done;
  Obs.Collector.flush co ~now:!now;
  C.value c

let prop_sampled_series_determinism =
  QCheck.Test.make ~count:10
    ~name:"sampled series bit-identical, serial vs parallel"
    QCheck.(pair (int_bound 1000) (int_range 1 4))
    (fun (seed, worlds) ->
      let fresh () =
        Array.init worlds (fun _ -> Obs.Collector.create ~every:100 ())
      in
      let cs_serial = fresh () and cs_par = fresh () in
      let serial =
        Fleet.run ~domains:1 ~worlds
          (sampled_world ~collectors:cs_serial ~seed ~steps:40)
      in
      let par =
        Fleet.run ~domains:2 ~worlds
          (sampled_world ~collectors:cs_par ~seed ~steps:40)
      in
      let series cs =
        Array.to_list cs
        |> List.map (fun co ->
               Obs.Timeseries.to_json (Obs.Collector.series co))
      in
      Fleet.values serial = Fleet.values par
      && series cs_serial = series cs_par)

let test_fleet_sampled_4worlds () =
  (* the ISSUE's canonical shape: 4 worlds over 2 domains, merged
     series identical to the serial merge *)
  let fresh () = Array.init 4 (fun _ -> Obs.Collector.create ~every:100 ()) in
  let cs_serial = fresh () and cs_par = fresh () in
  ignore
    (Fleet.run ~domains:1 ~worlds:4
       (sampled_world ~collectors:cs_serial ~seed:7 ~steps:60));
  ignore
    (Fleet.run ~domains:2 ~worlds:4
       (sampled_world ~collectors:cs_par ~seed:7 ~steps:60));
  let merged cs = Obs.Collector.merged_series (Array.to_list cs) in
  Alcotest.(check bool)
    "merged sampled series identical" true
    (Obs.Timeseries.to_json (merged cs_serial)
    = Obs.Timeseries.to_json (merged cs_par))

(* --- Atomic ID allocators across domains ------------------------------- *)

let test_atomic_ids_across_domains () =
  let per_domain = 50 in
  let ids =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.init per_domain (fun _ -> X86.Paging.id (X86.Paging.create ()))))
    |> List.concat_map Domain.join
  in
  let distinct = List.sort_uniq compare ids in
  check_int "paging ids never collide" (4 * per_domain)
    (List.length distinct)

(* --- Auditor state dies with the world --------------------------------- *)

let test_paudit_teardown () =
  let w = Palladium.boot () in
  let k = Palladium.kernel w in
  check_bool "auditor state registered at boot" true (Paudit.registered k);
  ignore (Palladium.create_kernel_segment w);
  check_bool "segments tracked after load" true (Paudit.segments k <> []);
  Palladium.teardown w;
  check_bool "state dropped by teardown" false (Paudit.registered k);
  check_bool "segment registry empty" true (Paudit.segments k = []);
  (* a fresh world is unaffected by the old one's teardown *)
  let w2 = Palladium.boot () in
  check_bool "new world registers independently" true
    (Paudit.registered (Palladium.kernel w2));
  Palladium.teardown w2

let () =
  Alcotest.run "fleet"
    [
      ( "sink",
        [
          Alcotest.test_case "isolation" `Quick test_sink_isolation;
          Alcotest.test_case "merge counters" `Quick test_sink_merge_counters;
          Alcotest.test_case "merge histograms" `Quick
            test_sink_merge_histograms;
          Alcotest.test_case "merge spans and traces" `Quick
            test_sink_merge_spans_and_traces;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "values in world order" `Quick
            test_fleet_values_in_order;
          Alcotest.test_case "zero worlds" `Quick test_fleet_zero_worlds;
          Alcotest.test_case "error propagates" `Quick
            test_fleet_error_propagates;
          Alcotest.test_case "invalid arguments" `Quick test_fleet_invalid_args;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "synthetic workload" `Quick
            test_fleet_synthetic_determinism;
          Alcotest.test_case "palladium worlds" `Quick
            test_fleet_palladium_determinism;
          QCheck_alcotest.to_alcotest prop_fleet_determinism;
          QCheck_alcotest.to_alcotest prop_sampled_series_determinism;
          Alcotest.test_case "sampled series, 4 worlds over 2 domains" `Quick
            test_fleet_sampled_4worlds;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "atomic paging ids" `Quick
            test_atomic_ids_across_domains;
        ] );
      ( "teardown",
        [ Alcotest.test_case "paudit forgets" `Quick test_paudit_teardown ] );
    ]
