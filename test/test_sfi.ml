(* Tests for the SFI baseline rewriter: coercion semantics, overhead
   accounting and the containment guarantee. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let i x = Asm.I x

let reg r = Operand.Reg r

let world () =
  let k = Kernel.boot () in
  let task = Kernel.create_task k ~name:"t" in
  (k, task)

let test_region_validation () =
  Alcotest.check_raises "size not a power of two"
    (Invalid_argument "Sfi: region size must be a power of two") (fun () ->
      ignore (Sfi.rewrite_program Sfi.Write_only { Sfi.base = 0; size = 3000 } []));
  Alcotest.check_raises "misaligned base"
    (Invalid_argument "Sfi: region base must be size-aligned") (fun () ->
      ignore
        (Sfi.rewrite_program Sfi.Write_only { Sfi.base = 100; size = 4096 } []))

let test_inserted_instruction_counts () =
  let prog =
    [
      i (Instr.Mov (Operand.absolute 0x100, reg Reg.EAX)); (* store: guarded *)
      i (Instr.Mov (reg Reg.EAX, Operand.absolute 0x100)); (* load *)
      i (Instr.Mov (reg Reg.EAX, reg Reg.EBX)); (* register only *)
    ]
  in
  (* each guard adds push/lea/and/or/pop = 5 instructions *)
  check_int "write-only guards stores" 5
    (Sfi.inserted_instructions Sfi.Write_only prog);
  check_int "read-write guards both" 10
    (Sfi.inserted_instructions Sfi.Read_write prog)

let test_indirect_control_flow_rejected () =
  Alcotest.check_raises "indirect jump"
    (Invalid_argument "Sfi: indirect control flow is not sandboxable") (fun () ->
      ignore
        (Sfi.rewrite_program Sfi.Write_only
           { Sfi.base = 0; size = 4096 }
           [ i (Instr.Jmp_ind (reg Reg.EAX)) ]))

(* Legal accesses within the region are unchanged by the coercion. *)
let test_semantics_preserved_inside_region () =
  let k, task = world () in
  let image =
    Image.create ~name:"inreg"
      ~bss:[ Image.bss_item ~align:4096 "buf" 4096 ]
      ~exports:[ "touch" ]
      [
        Asm.L "touch";
        i (Instr.Mov (reg Reg.EAX, Operand.deref ~disp:4 Reg.ESP));
        i (Instr.Mov (Operand.deref Reg.EAX, Operand.Imm 0x5A5A));
        i (Instr.Mov (reg Reg.EAX, Operand.deref Reg.EAX));
        i Instr.Ret;
      ]
  in
  (* full-width region: coercion is the identity *)
  let sandboxed =
    Sfi.sandbox_image Sfi.Read_write { Sfi.base = 0; size = 1 lsl 30 } image
  in
  let km = Kmod.insmod k sandboxed in
  let buf = Kmod.symbol km "buf" in
  match Kmod.invoke km task ~fn:"touch" ~arg:buf with
  | Kernel.Completed, v, _ -> check_int "write+read through guards" 0x5A5A v
  | _ -> Alcotest.fail "sandboxed run failed"

(* An escaping store is *coerced* into the region (SFI semantics: no
   trap, the extension can only hurt itself). *)
let test_escaping_store_coerced () =
  let k, task = world () in
  let image =
    Image.create ~name:"escape"
      ~bss:[ Image.bss_item ~align:4096 "buf" 4096 ]
      ~exports:[ "poke"; "probe" ]
      [
        Asm.L "poke";
        i (Instr.Mov (reg Reg.EAX, Operand.deref ~disp:4 Reg.ESP));
        i (Instr.Mov (Operand.deref Reg.EAX, Operand.Imm 0xBEEF));
        i Instr.Ret;
        Asm.L "probe";
        i (Instr.Mov (reg Reg.EAX, Operand.deref ~disp:4 Reg.ESP));
        i (Instr.Mov (reg Reg.EAX, Operand.deref Reg.EAX));
        i Instr.Ret;
      ]
  in
  (* Sandbox only "poke": probe stays raw so we can inspect memory.
     The region is the page at the buffer. *)
  let km_raw = Kmod.insmod k image in
  let buf = Kmod.symbol km_raw "buf" in
  let region = { Sfi.base = buf land lnot 4095; size = 4096 } in
  let sandboxed = Sfi.sandbox_image Sfi.Write_only region image in
  let km = Kmod.insmod k sandboxed in
  (* poke a mapped kernel address outside the region (the sandboxed
     module's own buffer page): the store must be coerced into the
     region — which is the *raw* module's buffer page — instead *)
  let outside = Kmod.symbol km "buf" + 0x24 in
  check_bool "outside really is outside" true
    (outside land lnot 4095 <> region.Sfi.base);
  (match Kmod.invoke km task ~fn:"poke" ~arg:outside with
  | Kernel.Completed, _, _ -> ()
  | _ -> Alcotest.fail "sandboxed poke failed");
  (* the coerced address is (outside & 0xFFF) | base *)
  let coerced = (outside land 4095) lor region.Sfi.base in
  (match Kmod.invoke km task ~fn:"probe" ~arg:coerced with
  | Kernel.Completed, v, _ -> check_int "store landed inside region" 0xBEEF v
  | _ -> Alcotest.fail "probe failed");
  (* and the outside location is untouched *)
  match Kmod.invoke km task ~fn:"probe" ~arg:outside with
  | Kernel.Completed, v, _ -> check_int "outside untouched" 0 v
  | _ -> Alcotest.fail "probe outside failed"

let test_overhead_scales_with_code () =
  let k, task = world () in
  let variant name sandbox n =
    let image =
      Image.create ~name
        ~bss:[ Image.bss_item ~align:4096 "buf" 4096 ]
        ~exports:[ "strrev" ]
        (Ulib.strrev_body ~name:"strrev")
    in
    let image =
      if sandbox then
        Sfi.sandbox_image Sfi.Write_only { Sfi.base = 0; size = 1 lsl 30 } image
      else image
    in
    let km = Kmod.insmod k image in
    let s = Bytes.cat (Bytes.make (n - 1) 'q') (Bytes.of_string "\000") in
    Kmod.poke km ~symbol:"buf" ~off:0 s;
    match Kmod.invoke km task ~fn:"strrev" ~arg:(Kmod.symbol km "buf") with
    | Kernel.Completed, _, cycles -> cycles
    | _ -> Alcotest.fail "variant run failed"
  in
  let nat32 = variant "n32" false 32 in
  let sfi32 = variant "s32" true 32 in
  let nat256 = variant "n256" false 256 in
  let sfi256 = variant "s256" true 256 in
  check_bool "overhead positive" true (sfi32 > nat32);
  (* absolute overhead grows with the work done, unlike Palladium's
     fixed crossing cost *)
  check_bool "absolute overhead grows" true (sfi256 - nat256 > sfi32 - nat32);
  let pct a b = float_of_int (a - b) /. float_of_int b in
  check_bool "within published SFI range (<=220%)" true
    (pct sfi256 nat256 <= 2.2)

let () =
  Alcotest.run "sfi"
    [
      ( "rewriter",
        [
          Alcotest.test_case "region validation" `Quick test_region_validation;
          Alcotest.test_case "inserted instruction counts" `Quick
            test_inserted_instruction_counts;
          Alcotest.test_case "indirect control flow rejected" `Quick
            test_indirect_control_flow_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "identity inside region" `Quick
            test_semantics_preserved_inside_region;
          Alcotest.test_case "escaping store coerced" `Quick
            test_escaping_store_coerced;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "scales with code, unlike Palladium" `Quick
            test_overhead_scales_with_code;
        ] );
    ]
