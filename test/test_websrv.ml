(* Tests for the web-server experiment (Table 3) and the IPC
   baselines (Table 2's RPC column). *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let run inv bytes =
  Server.run ~invocation:inv ~bytes ~protected_call_usec:0.72 ()

(* --- CGI cost model ------------------------------------------------------- *)

let test_model_ordering () =
  (* Per-request CPU cost must order CGI > FastCGI > protected LibCGI >
     LibCGI > static, at every size. *)
  List.iter
    (fun bytes ->
      let c inv = Cgi_model.request_usec ~invocation:inv ~bytes ~protected_call_usec:0.72 in
      check_bool "cgi most expensive" true (c Cgi_model.Cgi > c Cgi_model.Fast_cgi);
      check_bool "fastcgi above libcgi" true
        (c Cgi_model.Fast_cgi > c Cgi_model.Libcgi_protected);
      check_bool "protection costs something" true
        (c Cgi_model.Libcgi_protected > c Cgi_model.Libcgi);
      check_bool "libcgi above static" true
        (c Cgi_model.Libcgi > c Cgi_model.Static))
    [ 28; 1024; 10_240; 102_400 ]

let test_model_monotone_in_size () =
  List.iter
    (fun inv ->
      let c bytes = Cgi_model.request_usec ~invocation:inv ~bytes ~protected_call_usec:0.72 in
      check_bool "larger files cost more" true (c 102_400 > c 1024))
    [ Cgi_model.Static; Cgi_model.Cgi; Cgi_model.Fast_cgi; Cgi_model.Libcgi ]

(* --- Server simulation ------------------------------------------------------ *)

let test_server_completes_all () =
  let r = run Cgi_model.Static 1024 in
  check_int "all requests served" 1000 r.Server.requests;
  check_bool "positive throughput" true (r.Server.throughput_rps > 0.0);
  check_bool "cpu utilisation sane" true
    (r.Server.cpu_utilisation > 0.9 && r.Server.cpu_utilisation <= 1.0001)

let test_throughput_ordering () =
  List.iter
    (fun bytes ->
      let t inv = (run inv bytes).Server.throughput_rps in
      check_bool "static fastest" true (t Cgi_model.Static >= t Cgi_model.Libcgi);
      check_bool "libcgi beats fastcgi" true
        (t Cgi_model.Libcgi > t Cgi_model.Fast_cgi);
      check_bool "fastcgi beats cgi" true (t Cgi_model.Fast_cgi > t Cgi_model.Cgi))
    [ 28; 10_240 ]

let test_protected_libcgi_within_4_percent () =
  (* The paper's headline: protected LibCGI stays within 4% of
     unprotected LibCGI at every size. *)
  List.iter
    (fun bytes ->
      let p = (run Cgi_model.Libcgi_protected bytes).Server.throughput_rps in
      let u = (run Cgi_model.Libcgi bytes).Server.throughput_rps in
      check_bool
        (Printf.sprintf "within 4%% at %d bytes" bytes)
        true
        (p >= u *. 0.96))
    [ 28; 1024; 10_240; 102_400 ]

let test_cpu_bound_at_100k () =
  let r = run Cgi_model.Static 102_400 in
  check_bool "server CPU is the bottleneck" true
    (r.Server.cpu_utilisation > r.Server.link_utilisation)

(* --- RPC baseline ------------------------------------------------------------- *)

let test_rpc_magnitude () =
  let t32 = Rpc.round_trip_usec ~bytes:32 in
  check_bool "32B around 349 usec (±5%)" true (t32 > 330.0 && t32 < 370.0);
  let t256 = Rpc.round_trip_usec ~bytes:256 in
  check_bool "256B around 423 usec (±5%)" true (t256 > 400.0 && t256 < 445.0)

let test_rpc_monotone () =
  check_bool "cost grows with payload" true
    (Rpc.round_trip_usec ~bytes:256 > Rpc.round_trip_usec ~bytes:32)

let test_rpc_des_matches_closed_form () =
  List.iter
    (fun bytes ->
      let closed = Rpc.round_trip_usec ~bytes in
      let sim = Rpc.measure ~runs:5 ~bytes () in
      check_bool
        (Printf.sprintf "DES within 1%% at %d bytes" bytes)
        true
        (abs_float (sim -. closed) /. closed < 0.01))
    [ 32; 256 ]

let test_l4_lrpc_constants () =
  check_int "l4 best case" 242 L4.best_case_cycles;
  check_int "l4 crossings" 4 L4.domain_crossings;
  check_bool "palladium beats l4" true (L4.palladium_advantage ~palladium_cycles:144 > 0);
  check_bool "lrpc speedup" true (Lrpc.speedup_vs_rpc > 3.0)

let () =
  Alcotest.run "websrv-ipc"
    [
      ( "cgi-model",
        [
          Alcotest.test_case "invocation cost ordering" `Quick test_model_ordering;
          Alcotest.test_case "monotone in size" `Quick test_model_monotone_in_size;
        ] );
      ( "server",
        [
          Alcotest.test_case "completes all requests" `Quick test_server_completes_all;
          Alcotest.test_case "throughput ordering" `Quick test_throughput_ordering;
          Alcotest.test_case "protected within 4% of unprotected" `Quick
            test_protected_libcgi_within_4_percent;
          Alcotest.test_case "CPU-bound at 100 KB" `Quick test_cpu_bound_at_100k;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "magnitude vs paper" `Quick test_rpc_magnitude;
          Alcotest.test_case "monotone" `Quick test_rpc_monotone;
          Alcotest.test_case "DES matches closed form" `Quick
            test_rpc_des_matches_closed_form;
          Alcotest.test_case "L4/LRPC constants" `Quick test_l4_lrpc_constants;
        ] );
    ]
