(* Differential oracle for the basic-block execution engine: every
   scenario runs twice in fresh, identical worlds — once under the
   interpreter, once under the block engine — and the full observable
   state must be bit-identical: registers, EIP, flags, cycle totals,
   instruction counts, fault counts, stop condition, marks, the
   instruction trace and every Obs counter delta.

   Also pins the interpreter-loop fixes that rode along with the
   engine: the bounded trace ring, retired-instruction fuel semantics
   (a handled fault consumes no [max_instrs] slot), and the
   [Code_mem.store_program] stale-tail fix. *)

module P = X86.Privilege
module Sel = X86.Selector
module Desc = X86.Descriptor
module DT = X86.Desc_table
module PM = X86.Phys_mem
module Pg = X86.Paging
module Seg = X86.Segmentation
module F = X86.Fault

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let i x = Asm.I x

let reg r = Operand.Reg r

let imm v = Operand.Imm v

(* --- Machine-level harness ------------------------------------------ *)

type world = {
  cpu : Cpu.t;
  bx : Bexec.t;
  phys : PM.t;
  dir : Pg.dir;
  view : DT.view;
  kcs : Sel.t;
  kds : Sel.t;
  ucs : Sel.t;
  uds : Sel.t;
}

(* Same flat machine as test_machine, but with the block engine
   attached and the engine under test selected. *)
let make_world engine =
  let phys = PM.create () in
  let dir = Pg.create () in
  for vpn = 0 to 31 do
    let pfn = PM.alloc_frame phys in
    Pg.map dir ~vpn ~pfn ~writable:true ~user:true
  done;
  let gdt = DT.gdt () in
  let lim = 0x1F_FFFF in
  DT.set gdt 1 (Desc.code ~base:0 ~limit:lim ~dpl:P.R0 ());
  DT.set gdt 2 (Desc.data ~base:0 ~limit:lim ~dpl:P.R0 ());
  DT.set gdt 3 (Desc.code ~base:0 ~limit:lim ~dpl:P.R3 ());
  DT.set gdt 4 (Desc.data ~base:0 ~limit:lim ~dpl:P.R3 ());
  let kcs = Sel.make ~rpl:P.R0 1 in
  let kds = Sel.make ~rpl:P.R0 2 in
  let ucs = Sel.make ~rpl:P.R3 3 in
  let uds = Sel.make ~rpl:P.R3 4 in
  let idt = DT.create ~capacity:64 ~name:"idt" ~is_gdt:false () in
  let tss = Tss.create ~dir () in
  Tss.set_stack tss P.R0 { Tss.stack_selector = kds; stack_pointer = 0x8000 };
  let mmu = X86.Mmu.create phys ~dir in
  let code = Code_mem.create () in
  let view = DT.view gdt in
  let cpu = Cpu.create ~mmu ~code ~view ~idt ~tss () in
  let bx = Bexec.attach cpu in
  Cpu.set_engine cpu engine;
  { cpu; bx; phys; dir; view; kcs; kds; ucs; uds }

let enter_kernel_mode w ~eip ~esp =
  Cpu.force_seg w.cpu Reg.CS (Seg.load_code w.view ~new_cpl:P.R0 w.kcs);
  Cpu.force_seg w.cpu Reg.SS (Seg.load_stack w.view ~cpl:P.R0 w.kds);
  Cpu.force_seg w.cpu Reg.DS (Seg.load_data w.view ~cpl:P.R0 w.kds);
  Cpu.force_seg w.cpu Reg.ES (Seg.load_data w.view ~cpl:P.R0 w.kds);
  Cpu.set_eip w.cpu eip;
  Cpu.set_reg w.cpu Reg.ESP esp;
  Cpu.set_halted w.cpu false

let enter_user_mode w ~eip ~esp =
  Cpu.force_seg w.cpu Reg.CS (Seg.load_code w.view ~new_cpl:P.R3 w.ucs);
  Cpu.force_seg w.cpu Reg.SS (Seg.load_stack w.view ~cpl:P.R3 w.uds);
  Cpu.force_seg w.cpu Reg.DS (Seg.load_data w.view ~cpl:P.R3 w.uds);
  Cpu.force_seg w.cpu Reg.ES (Seg.load_data w.view ~cpl:P.R3 w.uds);
  Cpu.set_eip w.cpu eip;
  Cpu.set_reg w.cpu Reg.ESP esp;
  Cpu.set_halted w.cpu false

let load_at w ~org prog =
  let asm = Asm.assemble ~org prog in
  Code_mem.store_program (Cpu.code w.cpu) ~addr:org asm.Asm.instrs;
  asm

let org = 0x1000

(* Everything the slow path can be observed to produce. *)
type obs = {
  o_stop : string;
  o_regs : int list;
  o_eip : int;
  o_flags : bool * bool * bool;
  o_cycles : int;
  o_instrs : int;
  o_faults : int;
  o_halted : bool;
  o_marks : (string * int) list;
  o_trace : (int * string) list;
  o_counters : (string * int) list;
}

let stop_string = function
  | Cpu.Halted -> "halted"
  | Cpu.Max_instructions -> "max-instructions"
  | Cpu.Fault_abort f -> Fmt.str "fault: %a" F.pp f

(* The [bcache.*] counters are engine meta-counters — they track the
   translation cache itself, which only exists under the block engine
   — so they are excluded from the architectural bit-identity check. *)
let architectural counters =
  List.filter
    (fun (name, _) -> not (String.length name >= 7 && String.sub name 0 7 = "bcache."))
    counters

(* Run [scenario] in a fresh world under a fresh sink; the snapshot at
   the end therefore equals this run's counter deltas. *)
let observe engine scenario =
  let sink = Obs.Sink.create () in
  Obs.Sink.with_sink sink (fun () ->
      let w = make_world engine in
      let stop = scenario w in
      let fl = Cpu.flags w.cpu in
      {
        o_stop = stop_string stop;
        o_regs = List.map (Cpu.get_reg w.cpu) Reg.all;
        o_eip = Cpu.eip w.cpu;
        o_flags = (fl.Cpu.zf, fl.Cpu.cf, fl.Cpu.lt);
        o_cycles = Cpu.cycles w.cpu;
        o_instrs = Cpu.instructions w.cpu;
        o_faults = Cpu.fault_count w.cpu;
        o_halted = Cpu.halted w.cpu;
        o_marks = Cpu.marks w.cpu;
        o_trace =
          List.map
            (fun (eip, ins) -> (eip, Fmt.str "%a" Instr.pp ins))
            (Cpu.recent_trace ~n:Cpu.trace_capacity w.cpu);
        o_counters = architectural (Obs.Counters.snapshot ());
      })

let check_obs name (a : obs) (b : obs) =
  Alcotest.(check string) (name ^ ": stop") a.o_stop b.o_stop;
  Alcotest.(check (list int)) (name ^ ": regs") a.o_regs b.o_regs;
  check_int (name ^ ": eip") a.o_eip b.o_eip;
  check_bool (name ^ ": halted") a.o_halted b.o_halted;
  check_int (name ^ ": cycles") a.o_cycles b.o_cycles;
  check_int (name ^ ": instructions") a.o_instrs b.o_instrs;
  check_int (name ^ ": faults") a.o_faults b.o_faults;
  Alcotest.(check (list (pair string int))) (name ^ ": marks") a.o_marks b.o_marks;
  Alcotest.(check (list (pair int string))) (name ^ ": trace") a.o_trace b.o_trace;
  Alcotest.(check (list (pair string int)))
    (name ^ ": counters") a.o_counters b.o_counters;
  check_bool (name ^ ": flags") true (a.o_flags = b.o_flags)

(* Run the scenario under both engines and demand identical
   observations. *)
let differential name scenario =
  check_obs name (observe Cpu.Interp scenario) (observe Cpu.Blocks scenario)

let run_traced ?max_instrs w =
  Cpu.set_tracing w.cpu true;
  Cpu.run ?max_instrs w.cpu

(* --- Deterministic machine-level differentials ----------------------- *)

let test_alu_straightline () =
  differential "alu" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 40));
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 2));
             i (Instr.Mov (reg Reg.EBX, reg Reg.EAX));
             i (Instr.Alu (Instr.Sub, reg Reg.EBX, imm 12));
             i (Instr.Alu (Instr.And, reg Reg.EBX, imm 0xFF));
             i (Instr.Alu (Instr.Or, reg Reg.EBX, imm 0x100));
             i (Instr.Alu (Instr.Xor, reg Reg.EBX, imm 0x0F0));
             i (Instr.Shl (reg Reg.EBX, 3));
             i (Instr.Shr (reg Reg.EBX, 1));
             i (Instr.Not (reg Reg.ECX));
             i (Instr.Neg (reg Reg.EDX));
             i (Instr.Imul (Reg.EAX, imm 3));
             i (Instr.Inc (reg Reg.ESI));
             i (Instr.Dec (reg Reg.EDI));
             i (Instr.Xchg (reg Reg.EAX, reg Reg.EBX));
             i
               (Instr.Lea
                  ( Reg.EDX,
                    {
                      Operand.base = Some Reg.EAX;
                      index = Some (Reg.EBX, 4);
                      disp = 12;
                      seg_override = None;
                    } ));
             i (Instr.Cmp (reg Reg.EAX, imm 7));
             i (Instr.Test (reg Reg.EBX, imm 0xF0));
             i (Instr.Mark "mid");
             i Instr.Nop;
             i (Instr.Work 17);
             i Instr.Hlt;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      run_traced w)

let test_loop_and_branches () =
  differential "loop" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.ECX, imm 500));
             i (Instr.Mov (reg Reg.EAX, imm 0));
             Asm.L "loop";
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 3));
             i (Instr.Work 5);
             i (Instr.Dec (reg Reg.ECX));
             i (Instr.Jcc (Instr.Ne, Instr.Label "loop"));
             i Instr.Hlt;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      Cpu.run w.cpu)

let test_memory_and_stack () =
  differential "memory" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 0xDEAD));
             i (Instr.Mov (Operand.absolute 0x10000, reg Reg.EAX));
             i (Instr.Mov (reg Reg.EBX, Operand.absolute 0x10000));
             i (Instr.Movb (reg Reg.ECX, Operand.absolute 0x10000));
             i (Instr.Push (reg Reg.EBX));
             i (Instr.Push (imm 77));
             i (Instr.Pop (reg Reg.EDX));
             i (Instr.Pop (Operand.absolute 0x10004));
             i (Instr.Xchg (reg Reg.EAX, Operand.absolute 0x10004));
             i (Instr.Call (Instr.Label "sub"));
             i Instr.Hlt;
             Asm.L "sub";
             i (Instr.Inc (reg Reg.ESI));
             i Instr.Ret;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      run_traced w)

let test_user_mode () =
  differential "user" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 5));
             Asm.L "spin";
             i (Instr.Mov (Operand.absolute 0x12000, reg Reg.EAX));
             i (Instr.Dec (reg Reg.EAX));
             i (Instr.Jcc (Instr.Ne, Instr.Label "spin"));
             i Instr.Hlt;
           ]);
      enter_user_mode w ~eip:org ~esp:0x8000;
      run_traced w)

let test_unhandled_fault () =
  differential "unhandled-fault" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 1));
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 2));
             (* vpn 48 is unmapped: page fault, no handler installed *)
             i (Instr.Mov (Operand.absolute 0x30000, reg Reg.EAX));
             i Instr.Hlt;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      run_traced w)

let test_handled_fault () =
  differential "handled-fault" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 9));
             i (Instr.Mov (Operand.absolute 0x30000, reg Reg.EAX));
             i (Instr.Mov (reg Reg.EBX, Operand.absolute 0x30000));
             i Instr.Hlt;
           ]);
      Cpu.set_on_fault w.cpu
        (Some
           (fun _cpu _fault ->
             (match Pg.lookup w.dir ~vpn:48 with
             | Some _ -> ()
             | None ->
                 let pfn = PM.alloc_frame w.phys in
                 Pg.map w.dir ~vpn:48 ~pfn ~writable:true ~user:true);
             Cpu.Fault_continue));
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      run_traced w)

let test_on_instr_hook_parity () =
  (* The hook must fire once per attempted instruction under both
     engines, and observe fully-committed state each time. *)
  let seen_interp = ref [] and seen_blocks = ref [] in
  let scenario seen w =
    ignore
      (load_at w ~org
         [
           i (Instr.Mov (reg Reg.EAX, imm 1));
           i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 2));
           i (Instr.Work 4);
           i (Instr.Mov (Operand.absolute 0x10000, reg Reg.EAX));
           i Instr.Hlt;
         ]);
    Cpu.set_on_instr w.cpu
      (Some
         (fun cpu ->
           seen := (Cpu.eip cpu, Cpu.cycles cpu, Cpu.instructions cpu) :: !seen));
    enter_kernel_mode w ~eip:org ~esp:0x8000;
    Cpu.run w.cpu
  in
  check_obs "hook"
    (observe Cpu.Interp (scenario seen_interp))
    (observe Cpu.Blocks (scenario seen_blocks));
  check_bool "hook observations identical" true (!seen_interp = !seen_blocks);
  check_int "hook fired per instruction" 5 (List.length !seen_interp)

(* --- Fuel semantics (satellite: Fault_continue consumes no slot) ----- *)

let fuel_world engine =
  let w = make_world engine in
  ignore
    (load_at w ~org
       [
         i (Instr.Mov (reg Reg.EAX, imm 9));
         i (Instr.Mov (Operand.absolute 0x30000, reg Reg.EAX));
         i Instr.Hlt;
       ]);
  Cpu.set_on_fault w.cpu
    (Some
       (fun _cpu _fault ->
         (match Pg.lookup w.dir ~vpn:48 with
         | Some _ -> ()
         | None ->
             let pfn = PM.alloc_frame w.phys in
             Pg.map w.dir ~vpn:48 ~pfn ~writable:true ~user:true);
         Cpu.Fault_continue));
  enter_kernel_mode w ~eip:org ~esp:0x8000;
  w

let test_fuel_handled_fault_free () =
  List.iter
    (fun engine ->
      (* 3 retired instructions (mov, store-after-retry, hlt): a fuel
         budget of exactly 3 must reach the halt — the faulting attempt
         consumes no slot. *)
      let w = fuel_world engine in
      (match Cpu.run ~max_instrs:3 w.cpu with
      | Cpu.Halted -> ()
      | s -> Alcotest.failf "expected halt, got %s" (stop_string s));
      (* One slot short stops on fuel, not on the fault. *)
      let w = fuel_world engine in
      match Cpu.run ~max_instrs:2 w.cpu with
      | Cpu.Max_instructions -> ()
      | s -> Alcotest.failf "expected fuel exhaustion, got %s" (stop_string s))
    [ Cpu.Interp; Cpu.Blocks ]

let test_fuel_mid_block () =
  differential "mid-block fuel" (fun w ->
      ignore
        (load_at w ~org
           (List.init 10 (fun k -> i (Instr.Alu (Instr.Add, reg Reg.EAX, imm k)))
           @ [ i Instr.Hlt ]));
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      run_traced ~max_instrs:5 w)

(* --- Invalidation ---------------------------------------------------- *)

let test_invalidate_store () =
  differential "self-modifying store" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 1));
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 1));
             i Instr.Hlt;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      let s1 = Cpu.run w.cpu in
      (match s1 with Cpu.Halted -> () | s -> Alcotest.fail (stop_string s));
      (* Patch the second instruction; a re-run must see the new code,
         not a stale translation. *)
      Code_mem.store (Cpu.code w.cpu) ~addr:(org + Instr.size)
        (Instr.Alu (Instr.Add, reg Reg.EAX, imm 41));
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      let s2 = Cpu.run w.cpu in
      check_int "patched result" 42 (Cpu.get_reg w.cpu Reg.EAX);
      s2)

let test_invalidate_remove_range () =
  differential "remove_range" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 7));
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 1));
             i Instr.Hlt;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      (match Cpu.run w.cpu with
      | Cpu.Halted -> ()
      | s -> Alcotest.fail (stop_string s));
      (* Remove the tail; re-running must fault at the hole instead of
         replaying a cached block. *)
      Code_mem.remove_range (Cpu.code w.cpu) ~addr:(org + Instr.size)
        ~len:(2 * Instr.size);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      Cpu.run w.cpu)

let test_invalidate_cr3 () =
  differential "cr3 reload" (fun w ->
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 3));
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 4));
             i Instr.Hlt;
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      (match Cpu.run w.cpu with
      | Cpu.Halted -> ()
      | s -> Alcotest.fail (stop_string s));
      (* Switch to a directory that does not map the code pages: the
         cached block must not outlive the address space. *)
      let dir2 = Pg.create () in
      let tss2 = Tss.create ~dir:dir2 () in
      Tss.set_stack tss2 P.R0 { Tss.stack_selector = w.kds; stack_pointer = 0x8000 };
      Cpu.switch_task w.cpu ~view:w.view ~tss:tss2;
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      Cpu.run w.cpu)

(* --- store_program stale-tail regression (satellite) ----------------- *)

let test_store_program_shrink () =
  (* Direct unit check on Code_mem… *)
  let code = Code_mem.create () in
  Code_mem.store_program code ~addr:0x1000
    [| Instr.Nop; Instr.Nop; Instr.Nop; Instr.Nop; Instr.Hlt |];
  Code_mem.store_program code ~addr:0x1000 [| Instr.Nop; Instr.Hlt |];
  check_bool "slot 2 cleared" true (Code_mem.fetch code ~addr:0x1008 = None);
  check_bool "slot 4 cleared" true (Code_mem.fetch code ~addr:0x1010 = None);
  check_bool "slot 0 present" true (Code_mem.fetch code ~addr:0x1000 <> None);
  (* …and the executable consequence, identical under both engines:
     running past the shorter image faults instead of executing the
     longer image's stale tail. *)
  differential "stale tail" (fun w ->
      let long_prog =
        [
          i (Instr.Mov (reg Reg.EAX, imm 1));
          i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 1));
          i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 1));
          i Instr.Hlt;
        ]
      in
      ignore (load_at w ~org long_prog);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      (match Cpu.run w.cpu with
      | Cpu.Halted -> ()
      | s -> Alcotest.fail (stop_string s));
      (* Shorter image over the same base: no Hlt of its own, so
         execution must fault at the cleared tail. *)
      ignore
        (load_at w ~org
           [
             i (Instr.Mov (reg Reg.EAX, imm 5));
             i (Instr.Alu (Instr.Add, reg Reg.EAX, imm 5));
           ]);
      enter_kernel_mode w ~eip:org ~esp:0x8000;
      Cpu.run w.cpu)

(* --- Trace ring (satellite) ------------------------------------------ *)

let test_trace_ring_bounded () =
  let w = make_world Cpu.Blocks in
  ignore
    (load_at w ~org
       [
         i (Instr.Mov (reg Reg.ECX, imm 2000));
         Asm.L "loop";
         i (Instr.Dec (reg Reg.ECX));
         i (Instr.Jcc (Instr.Ne, Instr.Label "loop"));
         i Instr.Hlt;
       ]);
  Cpu.set_tracing w.cpu true;
  enter_kernel_mode w ~eip:org ~esp:0x8000;
  (match Cpu.run w.cpu with
  | Cpu.Halted -> ()
  | s -> Alcotest.fail (stop_string s));
  (* 4001 instructions were traced; the ring keeps the newest. *)
  let all = Cpu.recent_trace ~n:(10 * Cpu.trace_capacity) w.cpu in
  check_int "ring capped" Cpu.trace_capacity (List.length all);
  let last_eip, last = List.nth all (List.length all - 1) in
  check_int "newest is hlt" (org + (3 * Instr.size)) last_eip;
  check_bool "newest is hlt instr" true (last = Instr.Hlt);
  let dflt = Cpu.recent_trace w.cpu in
  check_int "default window" 32 (List.length dflt)

(* --- Randomized differential (qcheck) -------------------------------- *)

let gen_prog =
  let open QCheck.Gen in
  let any_reg = oneofl Reg.all in
  let data_reg = oneofl [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ] in
  let alu_op = oneofl [ Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Xor ] in
  let cond =
    oneofl
      [
        Instr.Eq;
        Instr.Ne;
        Instr.Lt;
        Instr.Le;
        Instr.Gt;
        Instr.Ge;
        Instr.Below;
        Instr.Below_eq;
        Instr.Above;
        Instr.Above_eq;
      ]
  in
  let value = oneof [ int_bound 0xFF; int_bound 0xFFFF_FFFF; return 0 ] in
  (* mapped, aligned, clear of the code page and the stack top *)
  let mem_addr = map (fun k -> 0x10000 + (4 * k)) (int_bound 0x2FFF) in
  let src = oneof [ map (fun r -> reg r) data_reg; map (fun v -> imm v) value ] in
  let gen_instr ~index ~len =
    let fwd_target =
      map (fun k -> Instr.Abs (org + (Instr.size * (index + 1 + k))))
        (int_bound (len - index - 1))
    in
    frequency
      [
        (6, map2 (fun r s -> Instr.Mov (reg r, s)) data_reg src);
        (4, map3 (fun op r s -> Instr.Alu (op, reg r, s)) alu_op data_reg src);
        (2, map2 (fun a b -> Instr.Cmp (a, b)) src src);
        (2, map2 (fun a b -> Instr.Test (a, b)) src src);
        (1, map (fun r -> Instr.Inc (reg r)) data_reg);
        (1, map (fun r -> Instr.Dec (reg r)) data_reg);
        (1, map (fun r -> Instr.Neg (reg r)) data_reg);
        (1, map (fun r -> Instr.Not (reg r)) data_reg);
        (1, map2 (fun r k -> Instr.Shl (reg r, k)) data_reg (int_bound 40));
        (1, map2 (fun r k -> Instr.Shr (reg r, k)) data_reg (int_bound 40));
        (1, map2 (fun r s -> Instr.Imul (r, s)) data_reg src);
        (1, map2 (fun a b -> Instr.Xchg (reg a, reg b)) data_reg data_reg);
        (1, map (fun r -> Instr.Movb (reg r, Operand.Imm 0x1FF)) data_reg);
        ( 2,
          map2
            (fun r a ->
              Instr.Lea
                ( r,
                  {
                    Operand.base = Some Reg.EBX;
                    index = Some (Reg.ECX, 4);
                    disp = a;
                    seg_override = None;
                  } ))
            data_reg (int_bound 0xFFFF) );
        (3, map2 (fun a r -> Instr.Mov (Operand.absolute a, reg r)) mem_addr any_reg);
        (3, map2 (fun r a -> Instr.Mov (reg r, Operand.absolute a)) data_reg mem_addr);
        (1, map (fun r -> Instr.Push (reg r)) data_reg);
        (1, map (fun r -> Instr.Pop (reg r)) data_reg);
        (1, map (fun n -> Instr.Work (1 + n)) (int_bound 30));
        (1, return Instr.Nop);
        (2, map (fun t -> Instr.Jmp t) fwd_target);
        (3, map2 (fun c t -> Instr.Jcc (c, t)) cond fwd_target);
        (* rare wild store: page fault ends the run, identically *)
        (1, map (fun r -> Instr.Mov (Operand.absolute 0x30000, reg r)) data_reg);
      ]
  in
  int_range 10 40 >>= fun len ->
  let rec go index acc =
    if index >= len then return (List.rev (Instr.Hlt :: acc))
    else gen_instr ~index ~len >>= fun ins -> go (index + 1) (ins :: acc)
  in
  go 0 []

let arb_prog =
  QCheck.make gen_prog ~print:(fun prog ->
      Fmt.str "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Instr.pp) prog)

let prop_random_program_identical =
  QCheck.Test.make ~count:80 ~name:"random programs bit-identical" arb_prog
    (fun prog ->
      let scenario w =
        Code_mem.store_program (Cpu.code w.cpu) ~addr:org (Array.of_list prog);
        enter_kernel_mode w ~eip:org ~esp:0x8000;
        run_traced ~max_instrs:2_000 w
      in
      observe Cpu.Interp scenario = observe Cpu.Blocks scenario)

(* --- Full workloads -------------------------------------------------- *)

let with_engine engine f =
  let saved = Bexec.get_default_engine () in
  Bexec.set_default_engine engine;
  Fun.protect ~finally:(fun () -> Bexec.set_default_engine saved) f

type kobs = {
  k_values : int list;
  k_cycles : int;
  k_instrs : int;
  k_counters : (string * int) list;
}

let observe_kernel engine scenario =
  with_engine engine @@ fun () ->
  let sink = Obs.Sink.create () in
  Obs.Sink.with_sink sink (fun () ->
      let values, cpu = scenario () in
      {
        k_values = values;
        k_cycles = Cpu.cycles cpu;
        k_instrs = Cpu.instructions cpu;
        k_counters = architectural (Obs.Counters.snapshot ());
      })

let check_kobs name a b =
  Alcotest.(check (list int)) (name ^ ": values") a.k_values b.k_values;
  check_int (name ^ ": cycles") a.k_cycles b.k_cycles;
  check_int (name ^ ": instructions") a.k_instrs b.k_instrs;
  Alcotest.(check (list (pair string int)))
    (name ^ ": counters") a.k_counters b.k_counters

let kernel_differential name scenario =
  check_kobs name
    (observe_kernel Cpu.Interp scenario)
    (observe_kernel Cpu.Blocks scenario)

let test_protected_call_workload () =
  kernel_differential "protected calls" (fun () ->
      let w = Palladium.boot () in
      let app = Palladium.create_app w ~name:"app" in
      let ext = User_ext.seg_dlopen app Ulib.counter_image in
      let prepare = User_ext.seg_dlsym app ext "bump" in
      let call () =
        match User_ext.call app ~prepare ~arg:0 with
        | Ok (v, _) -> v
        | Error e -> Alcotest.failf "bump failed: %a" User_ext.pp_call_error e
      in
      ([ call (); call (); call () ], Kernel.cpu (Palladium.kernel w)))

let test_kernel_ext_insmod_abort_reinsmod () =
  kernel_differential "insmod/abort/re-insmod" (fun () ->
      let w = Palladium.boot () in
      let task = Kernel.create_task (Palladium.kernel w) ~name:"init" in
      let invoke seg name arg =
        match Kernel_ext.invoke ~task seg ~name ~arg with
        | Ok (Some (v, _)) -> v
        | Ok None -> Alcotest.fail "service missing"
        | Error e -> Alcotest.failf "invoke failed: %a" Kernel_ext.pp_invoke_error e
      in
      let seg = Palladium.create_kernel_segment w in
      ignore (Kernel_ext.insmod seg Ulib.null_image);
      let v1 = invoke seg "nullext$null_fn" 7 in
      (* Fault the segment dead: its text must be dropped with it. *)
      ignore (Kernel_ext.insmod seg Ulib.rogue_read_image);
      let outside = Kernel_ext.seg_size seg + (16 * 1024 * 1024) in
      (match Kernel_ext.invoke ~task seg ~name:"rogueread$peek" ~arg:outside with
      | Error (Kernel_ext.Aborted_fault _) -> ()
      | _ -> Alcotest.fail "rogue read not confined");
      (* A fresh segment with the same module must work from scratch. *)
      let seg2 = Palladium.create_kernel_segment w in
      ignore (Kernel_ext.insmod seg2 Ulib.null_image);
      let v2 = invoke seg2 "nullext$null_fn" 9 in
      ([ v1; v2 ], Kernel.cpu (Palladium.kernel w)))

let test_abort_clears_segment_text () =
  let w = Palladium.boot () in
  let kernel = Palladium.kernel w in
  let seg = Palladium.create_kernel_segment w in
  ignore (Kernel_ext.insmod seg Ulib.null_image);
  let base = Kernel_ext.seg_base seg in
  check_bool "text present before abort" true
    (Code_mem.fetch (Kernel.code kernel) ~addr:base <> None);
  Kernel_ext.abort seg;
  check_bool "text gone after abort" true
    (Code_mem.fetch (Kernel.code kernel) ~addr:base = None)

(* --- Engine plumbing ------------------------------------------------- *)

let test_engine_of_string () =
  check_bool "interp" true (Bexec.engine_of_string "interp" = Some Cpu.Interp);
  check_bool "blocks" true (Bexec.engine_of_string "blocks" = Some Cpu.Blocks);
  check_bool "junk" true (Bexec.engine_of_string "turbo" = None);
  check_bool "round trip" true
    (Bexec.engine_to_string Cpu.Blocks = "blocks"
    && Bexec.engine_to_string Cpu.Interp = "interp")

let test_block_cache_populates () =
  let w = make_world Cpu.Blocks in
  ignore
    (load_at w ~org
       [
         i (Instr.Mov (reg Reg.ECX, imm 100));
         Asm.L "loop";
         i (Instr.Dec (reg Reg.ECX));
         i (Instr.Jcc (Instr.Ne, Instr.Label "loop"));
         i Instr.Hlt;
       ]);
  enter_kernel_mode w ~eip:org ~esp:0x8000;
  (match Cpu.run w.cpu with
  | Cpu.Halted -> ()
  | s -> Alcotest.fail (stop_string s));
  let st = Bexec.stats w.bx in
  check_bool "blocks cached" true (st.Bcache.bc_blocks > 0);
  check_bool "cache hits dominate" true
    (st.Bcache.bc_hits > 90 && st.Bcache.bc_lookups > st.Bcache.bc_hits)

let () =
  Alcotest.run "fastpath"
    [
      ( "differential",
        [
          Alcotest.test_case "alu straight line" `Quick test_alu_straightline;
          Alcotest.test_case "loop and branches" `Quick test_loop_and_branches;
          Alcotest.test_case "memory and stack" `Quick test_memory_and_stack;
          Alcotest.test_case "user mode" `Quick test_user_mode;
          Alcotest.test_case "unhandled fault" `Quick test_unhandled_fault;
          Alcotest.test_case "handled fault" `Quick test_handled_fault;
          Alcotest.test_case "on_instr hook parity" `Quick
            test_on_instr_hook_parity;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "handled fault is fuel-free" `Quick
            test_fuel_handled_fault_free;
          Alcotest.test_case "mid-block fuel boundary" `Quick test_fuel_mid_block;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "self-modifying store" `Quick test_invalidate_store;
          Alcotest.test_case "remove_range" `Quick test_invalidate_remove_range;
          Alcotest.test_case "cr3 reload" `Quick test_invalidate_cr3;
          Alcotest.test_case "store_program shrink" `Quick
            test_store_program_shrink;
          Alcotest.test_case "abort clears segment text" `Quick
            test_abort_clears_segment_text;
        ] );
      ( "trace",
        [ Alcotest.test_case "ring is bounded" `Quick test_trace_ring_bounded ] );
      ("random", [ QCheck_alcotest.to_alcotest prop_random_program_identical ]);
      ( "workloads",
        [
          Alcotest.test_case "protected calls" `Quick test_protected_call_workload;
          Alcotest.test_case "insmod abort re-insmod" `Quick
            test_kernel_ext_insmod_abort_reinsmod;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "engine_of_string" `Quick test_engine_of_string;
          Alcotest.test_case "block cache populates" `Quick
            test_block_cache_populates;
        ] );
    ]
