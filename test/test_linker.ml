(* Tests for the dynamic loader: images, symbol resolution, GOT/PLT
   indirection, eager binding and unloading. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let i x = Asm.I x

let reg r = Operand.Reg r

let world () =
  let k = Kernel.boot () in
  let task = Kernel.create_task k ~name:"t" in
  let rt = Runtime.install k task in
  let env = Dyld.create_env () in
  (k, task, rt, env)

(* --- Image construction ------------------------------------------------ *)

let test_image_duplicate_symbol () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Image x: duplicate symbol d") (fun () ->
      ignore
        (Image.create ~name:"x"
           ~data:[ Image.data_u32s "d" [ 1 ]; Image.data_u32s "d" [ 2 ] ]
           []))

let test_image_layout_alignment () =
  let img =
    Image.create ~name:"x"
      ~data:
        [
          Image.data_string "a" "xyz"; (* 3 bytes *)
          Image.data_u32s "b" [ 1 ] (* must be 4-aligned *);
        ]
      ~bss:[ Image.bss_item ~align:16 "c" 8 ]
      []
  in
  match Image.layout_data img ~base:0x1000 with
  | [ ("a", a, Some _); ("b", b, Some _); ("c", c, None) ] ->
      check_int "a at base" 0x1000 a;
      check_int "b aligned" 0x1004 b;
      check_int "c aligned to 16" 0x1010 c
  | _ -> Alcotest.fail "unexpected layout"

(* --- Loading ------------------------------------------------------------ *)

let adder_image =
  Image.create ~name:"adder"
    ~data:[ Image.data_u32s "bias" [ 100 ] ]
    ~exports:[ "add_bias" ]
    [
      Asm.L "add_bias";
      i (Instr.Mov (reg Reg.EDX, Operand.label "bias"));
      i (Instr.Mov (reg Reg.EAX, Operand.deref Reg.EDX));
      i (Instr.Alu (Instr.Add, reg Reg.EAX, Operand.deref ~disp:4 Reg.ESP));
      i Instr.Ret;
    ]

let test_dlopen_and_call () =
  let k, task, rt, env = world () in
  let h = Dyld.dlopen ~kernel:k ~task ~env adder_image in
  let fn = Dyld.dlsym h "add_bias" in
  let o = Runtime.invoke1 rt ~fn ~arg:23 in
  check_bool "completed" true (o.Runtime.result = Kernel.Completed);
  check_int "data + arg" 123 o.Runtime.value;
  (* exports are published to the environment *)
  check_bool "env export" true (Dyld.lookup env "add_bias" <> None)

let test_dlsym_missing () =
  let k, task, _rt, env = world () in
  let h = Dyld.dlopen ~kernel:k ~task ~env adder_image in
  match Dyld.dlsym h "nope" with
  | _ -> Alcotest.fail "expected Missing_symbol"
  | exception Dyld.Missing_symbol "nope" -> ()

let test_got_plt_indirection () =
  let k, task, rt, env = world () in
  ignore (Dyld.dlopen ~kernel:k ~task ~env Ulib.libc_image);
  (* client imports strlen through its GOT *)
  let h = Dyld.dlopen ~kernel:k ~task ~env Ulib.strlen_client_image in
  check_bool "has a GOT" true (h.Dyld.h_got_base <> None);
  let got = Option.get h.Dyld.h_got_base in
  (* eager binding filled the slot with strlen's address *)
  let bound = Address_space.peek_u32 task.Task.asp got in
  check_int "GOT slot bound eagerly"
    (match Dyld.lookup env "strlen" with Some (a, _) -> a | None -> -1)
    bound;
  (* and the call works end to end *)
  let buf =
    Address_space.mmap task.Task.asp ~len:4096 ~perms:Vm_area.rw Vm_area.Data
  in
  Address_space.populate task.Task.asp buf;
  Address_space.poke_string task.Task.asp buf.Vm_area.va_start "four\000";
  let fn = Dyld.dlsym h "len_of" in
  let o = Runtime.invoke1 rt ~fn ~arg:buf.Vm_area.va_start in
  check_int "strlen via PLT" 4 o.Runtime.value

let test_missing_import_fails () =
  let k, task, _rt, env = world () in
  match Dyld.dlopen ~kernel:k ~task ~env Ulib.strlen_client_image with
  | _ -> Alcotest.fail "expected Missing_symbol"
  | exception Dyld.Missing_symbol "strlen" -> ()

let test_dlclose_unloads () =
  let k, task, rt, env = world () in
  let h = Dyld.dlopen ~kernel:k ~task ~env adder_image in
  let fn = Dyld.dlsym h "add_bias" in
  Dyld.dlclose ~kernel:k ~task ~env h;
  check_bool "export removed" true (Dyld.lookup env "add_bias" = None);
  (* the text page is gone: calling it faults *)
  let o = Runtime.invoke1 rt ~fn ~arg:1 in
  check_bool "unloaded code faults" true
    (match o.Runtime.result with Kernel.Faulted _ -> true | _ -> false)

let test_fixed_address_executable () =
  let k, task, _rt, env = world () in
  let h =
    Dyld.dlopen ~placement:Dyld.executable ~kernel:k ~task ~env adder_image
  in
  check_int "loaded at the classic text base" X86.Layout.text_base
    h.Dyld.h_text_base

let test_cross_image_calls () =
  let k, task, rt, env = world () in
  ignore (Dyld.dlopen ~kernel:k ~task ~env adder_image);
  let caller =
    Image.create ~name:"caller" ~imports:[ "add_bias" ] ~exports:[ "twice" ]
      [
        Asm.L "twice";
        i (Instr.Push (Operand.deref ~disp:4 Reg.ESP));
        i (Instr.Call (Instr.Label "add_bias"));
        i (Instr.Alu (Instr.Add, reg Reg.ESP, Operand.Imm 4));
        i (Instr.Push (reg Reg.EAX));
        i (Instr.Call (Instr.Label "add_bias"));
        i (Instr.Alu (Instr.Add, reg Reg.ESP, Operand.Imm 4));
        i Instr.Ret;
      ]
  in
  let h = Dyld.dlopen ~kernel:k ~task ~env caller in
  let o = Runtime.invoke1 rt ~fn:(Dyld.dlsym h "twice") ~arg:5 in
  check_int "two hops through the GOT" 205 o.Runtime.value

let () =
  Alcotest.run "linker"
    [
      ( "image",
        [
          Alcotest.test_case "duplicate symbol" `Quick test_image_duplicate_symbol;
          Alcotest.test_case "data layout alignment" `Quick
            test_image_layout_alignment;
        ] );
      ( "dyld",
        [
          Alcotest.test_case "dlopen + call + data" `Quick test_dlopen_and_call;
          Alcotest.test_case "dlsym missing" `Quick test_dlsym_missing;
          Alcotest.test_case "GOT/PLT eager binding" `Quick test_got_plt_indirection;
          Alcotest.test_case "missing import" `Quick test_missing_import_fails;
          Alcotest.test_case "dlclose unloads" `Quick test_dlclose_unloads;
          Alcotest.test_case "fixed-address executable" `Quick
            test_fixed_address_executable;
          Alcotest.test_case "cross-image calls" `Quick test_cross_image_calls;
        ] );
    ]
